//! Cluster-wide dynamic load balancing.
//!
//! The paper runs MADNESS's *static* load balancing (§III-A): every node
//! executes exactly the tasks its process map assigned, and the
//! application waits for the slowest one. On a lumpy partition that
//! wastes every early-finishing node. This module replaces the
//! independent per-node runs with one cluster-level discrete-event
//! simulation in which work can *move*:
//!
//! * **[`BalanceMode::Static`]** — the baseline, re-expressed inside the
//!   DES (calibrated marginal rates, whole-batch execution) so the
//!   dynamic modes are compared against the identical cost model;
//! * **[`BalanceMode::Steal`]** — a node that drains its queue steals
//!   whole `TaskKind` batches (never fractional tasks) from the node
//!   with the latest estimated finish, paying the migration's wire time
//!   through the contention-aware [`Interconnect`] (shared torus links,
//!   in-flight cap). A steal only commits if the thief's estimated
//!   finish *including the transfer* stays at or below the victim's
//!   pre-steal estimate, so by induction no node's estimate ever exceeds
//!   the initial static makespan — `Steal` is structurally never worse
//!   than `Static`;
//! * **[`BalanceMode::Repartition`]** — TREES-style sync epochs: at each
//!   epoch the queued batches are reassigned across nodes by the shared
//!   speed-aware LPT ([`madness_mra::procmap::lpt_assign`]) from each
//!   node's *measured* EWMA cost per task, and the diffs migrate over
//!   the interconnect.
//!
//! Per-node pipeline detail is folded into a calibrated marginal rate
//! ([`crate::node::NodeSim::calibrate`]); after the DES settles, each
//! node's pipeline is re-simulated on the task count it actually
//! executed, so busy-time breakdowns and fault summaries (conservation
//! law included) stay exact. Every migration is journaled through
//! `madness-trace` as a [`Stage::Migrate`] span plus a [`BalanceEvent`],
//! and fault plans compose: a quarantined-GPU or straggler node
//! calibrates slow and naturally becomes a steal victim.

use crate::cluster::{ClusterReport, ClusterSim};
use crate::des::Des;
use crate::network::Interconnect;
use crate::node::{FaultSummary, NodeRate, ResourceMode};
use crate::workload::TaskPopulation;
use madness_faults::{
    FaultAction, FaultEvent, FaultInjector, FaultKind, FaultPlan, RecoveryPolicy,
};
use madness_gpusim::SimTime;
use madness_mra::procmap::lpt_assign;
use madness_trace::{BalanceEvent, BalanceKind, Recorder, Stage};

/// EWMA smoothing for the measured per-task cost a repartition epoch
/// feeds into the LPT.
const EWMA_ALPHA: f64 = 0.3;

/// Repartition epochs skip reassignment while the estimated-finish
/// imbalance (max/mean) is below this.
const REPARTITION_SLACK: f64 = 1.05;

/// How the cluster distributes work at runtime (orthogonal to
/// [`ResourceMode`], which picks the resources *within* a node).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceMode {
    /// The paper's static load balancing: nodes keep their partition.
    Static,
    /// Drained nodes steal whole batches from the most-loaded node.
    Steal {
        /// Smallest number of tasks worth stealing (rounded up to whole
        /// batches); guards against migration-dominated thrashing.
        min_batch: u64,
        /// Cluster-wide cap on concurrent in-flight migrations.
        max_inflight: usize,
    },
    /// Re-run the cost partition from measured EWMA rates at sync
    /// epochs, migrating the diffs.
    Repartition {
        /// Number of rebalance points spread across the estimated run.
        epochs: u32,
    },
}

impl BalanceMode {
    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BalanceMode::Static => "static",
            BalanceMode::Steal { .. } => "steal",
            BalanceMode::Repartition { .. } => "repartition",
        }
    }
}

/// Migration accounting of one balanced run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BalanceReport {
    /// Committed steals.
    pub steals: u64,
    /// Steal attempts deferred by the in-flight cap.
    pub blocked_steals: u64,
    /// Epochs that actually moved work.
    pub repartitions: u64,
    /// Tasks migrated (steals + repartitions).
    pub migrated_tasks: u64,
    /// Bytes migrated.
    pub migrated_bytes: u64,
    /// Aggregate wire time the migrations occupied links for.
    pub migration_wire: SimTime,
}

/// One node's state inside the balance DES.
#[derive(Clone, Debug)]
struct BalNode {
    rate: NodeRate,
    /// Tasks not yet started (stealable).
    queue: u64,
    /// Tasks started or finished here.
    executed: u64,
    /// When the batch in service completes (== start time while idle).
    busy_until: SimTime,
    /// Last completion time (ZERO if the node never ran anything).
    finished: SimTime,
    /// One inbound steal at a time.
    awaiting: bool,
    /// Measured per-task cost, seconds (repartition's input).
    ewma_rate: f64,
}

impl BalNode {
    /// Estimated compute finish: exact while nobody steals *from* the
    /// node, and steals only shrink it.
    fn compute_est(&self) -> SimTime {
        self.busy_until + self.rate.per_task * self.queue
    }
}

/// DES events. Node start is a `BatchDone` with nothing in service.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// The batch in service on `node` completed (or the node spun up).
    BatchDone(usize),
    /// A migration of `tasks` tasks landed on `to`.
    Arrive { to: usize, from: usize, tasks: u64 },
    /// Repartition sync point (the index is informational).
    Epoch(#[allow(dead_code)] u32),
}

/// Full cluster state threaded through the event loop.
struct BalCluster<'a> {
    nodes: Vec<BalNode>,
    des: Des<Ev>,
    net: Interconnect,
    /// Whole-batch quantum (the batcher's size trigger).
    batch_cap: u64,
    bytes_per_task: u64,
    mode: BalanceMode,
    inflight: usize,
    report: BalanceReport,
    rec: &'a mut dyn DynRecorder,
}

/// Object-safe shim over [`Recorder`] so the event loop is not generic
/// over it (the hot path here is decision logic, not journaling).
trait DynRecorder {
    fn enabled(&self) -> bool;
    fn span(&mut self, stage: Stage, start_ns: u64, end_ns: u64, lane: u32);
    fn balance_event(&mut self, ev: BalanceEvent);
    fn add(&mut self, counter: &'static str, delta: u64);
}

impl<R: Recorder> DynRecorder for R {
    fn enabled(&self) -> bool {
        R::ENABLED
    }
    fn span(&mut self, stage: Stage, start_ns: u64, end_ns: u64, lane: u32) {
        Recorder::span(self, stage, start_ns, end_ns, lane);
    }
    fn balance_event(&mut self, ev: BalanceEvent) {
        Recorder::balance_event(self, ev);
    }
    fn add(&mut self, counter: &'static str, delta: u64) {
        Recorder::add(self, counter, delta);
    }
}

/// Per-node outcome of the DES: what it executed and when it finished.
#[derive(Clone, Copy, Debug)]
struct NodeOutcome {
    executed: u64,
    finish: SimTime,
}

impl<'a> BalCluster<'a> {
    /// Per-node injection time if the node ends up with `tasks` tasks —
    /// the network component of its finish estimate.
    fn inj(&self, tasks: u64) -> SimTime {
        self.net.model().injection_time(tasks, self.bytes_per_task)
    }

    /// Estimated node finish including unoverlapped injection.
    fn est(&self, i: usize) -> SimTime {
        let n = &self.nodes[i];
        n.compute_est().max(self.inj(n.executed + n.queue))
    }

    /// Puts the next whole batch (or remainder) of `i`'s queue in
    /// service at `now`.
    fn start_batch(&mut self, i: usize, now: SimTime) {
        let n = &mut self.nodes[i];
        let b = n.queue.min(self.batch_cap);
        debug_assert!(b > 0);
        n.queue -= b;
        n.executed += b;
        n.busy_until = now + n.rate.per_task * b;
        n.finished = n.busy_until;
        // The node observes its own speed; repartition epochs read it.
        n.ewma_rate = EWMA_ALPHA * n.rate.per_task.as_secs_f64() + (1.0 - EWMA_ALPHA) * n.ewma_rate;
        let at = n.busy_until;
        self.des.schedule(at, Ev::BatchDone(i));
    }

    /// A steal attempt by drained node `thief` at `now`. Commits only if
    /// the thief's estimated finish (transfer included) stays at or
    /// below the victim's pre-steal estimate — the invariant that keeps
    /// `Steal` never worse than `Static`.
    fn try_steal(&mut self, thief: usize, now: SimTime) {
        let BalanceMode::Steal {
            min_batch,
            max_inflight,
        } = self.mode
        else {
            return;
        };
        if self.nodes[thief].awaiting || self.nodes[thief].queue > 0 {
            return;
        }
        if self.inflight >= max_inflight.max(1) {
            self.report.blocked_steals += 1;
            return; // retried when a transfer lands
        }
        // Victim: latest estimated finish among nodes with at least one
        // whole batch to give (ties to the lowest index).
        let mut victim: Option<usize> = None;
        for j in 0..self.nodes.len() {
            if j == thief || self.nodes[j].queue < self.batch_cap {
                continue;
            }
            if victim.is_none_or(|v| self.est(j) > self.est(v)) {
                victim = Some(j);
            }
        }
        let Some(v) = victim else { return };
        let victim_est = self.est(v);
        let batches_avail = self.nodes[v].queue / self.batch_cap;
        // Steal-half, at least `min_batch` tasks, in whole batches.
        let want = (self.nodes[v].queue / 2).max(min_batch);
        let want_batches = (want / self.batch_cap)
            .max(min_batch.div_ceil(self.batch_cap))
            .clamp(1, batches_avail);
        // If half the queue is too much to be profitable (slow thief,
        // congested network), fall back to a single batch.
        for a_batches in [want_batches, 1] {
            let a = a_batches * self.batch_cap;
            let wire = self.net.model().migration_time(a, self.bytes_per_task);
            let start = self.net.next_start(now);
            let arrive = start + wire;
            let t = &self.nodes[thief];
            let compute_after = t.busy_until.max(arrive) + t.rate.per_task * a;
            let thief_est = compute_after.max(self.inj(t.executed + a));
            if thief_est <= victim_est {
                let (lane, s2, a2) = self.net.migrate(now, a, self.bytes_per_task);
                debug_assert_eq!((s2, a2), (start, arrive));
                self.nodes[v].queue -= a;
                self.nodes[thief].awaiting = true;
                self.inflight += 1;
                self.des.schedule(
                    arrive,
                    Ev::Arrive {
                        to: thief,
                        from: v,
                        tasks: a,
                    },
                );
                self.journal_migration(BalanceKind::Steal, v, thief, a, lane, start, arrive, now);
                self.report.steals += 1;
                self.report.migrated_tasks += a;
                self.report.migrated_bytes += a * self.bytes_per_task;
                self.report.migration_wire += wire;
                return;
            }
            if a_batches == 1 {
                break;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn journal_migration(
        &mut self,
        kind: BalanceKind,
        from: usize,
        to: usize,
        tasks: u64,
        lane: usize,
        start: SimTime,
        arrive: SimTime,
        decided: SimTime,
    ) {
        if !self.rec.enabled() {
            return;
        }
        self.rec.span(
            Stage::Migrate,
            start.as_nanos(),
            arrive.as_nanos(),
            lane as u32,
        );
        self.rec.balance_event(BalanceEvent {
            kind,
            from_node: from as u32,
            to_node: to as u32,
            tasks,
            bytes: tasks * self.bytes_per_task,
            at_ns: decided.as_nanos(),
        });
        self.rec.add("migrations", 1);
        self.rec.add("migrated_tasks", tasks);
        self.rec.add("migrated_bytes", tasks * self.bytes_per_task);
    }

    /// TREES-style sync point: reassign every queued whole batch by
    /// speed-aware LPT over the measured EWMA rates, then migrate the
    /// diffs. Partial trailing batches stay home (whole batches only).
    fn epoch(&mut self, now: SimTime) {
        let n = self.nodes.len();
        // Imbalance gate: while estimates are even, moving work only
        // pays wire time.
        let ests: Vec<f64> = (0..n).map(|i| self.est(i).as_secs_f64()).collect();
        let max = ests.iter().cloned().fold(0.0, f64::max);
        let mean = ests.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 || max / mean <= REPARTITION_SLACK {
            return;
        }
        let movable: Vec<u64> = self
            .nodes
            .iter()
            .map(|nd| nd.queue / self.batch_cap)
            .collect();
        let total_batches: u64 = movable.iter().sum();
        if total_batches == 0 {
            return;
        }
        // Base = each node's unmovable backlog (batch in service plus
        // the partial remainder); speed = measured EWMA cost per task.
        let base: Vec<f64> = self
            .nodes
            .iter()
            .map(|nd| {
                let rem = nd.queue % self.batch_cap;
                (nd.busy_until.saturating_sub(now) + nd.rate.per_task * rem).as_secs_f64()
            })
            .collect();
        let speed: Vec<f64> = self.nodes.iter().map(|nd| nd.ewma_rate).collect();
        let weights = vec![self.batch_cap; total_batches as usize];
        let assignment = lpt_assign(&weights, &base, &speed);
        let mut new_batches = vec![0u64; n];
        for owner in assignment {
            new_batches[owner] += 1;
        }
        // Senders shed down to their new allotment; receivers pick the
        // surplus up in index order.
        let mut moved_any = false;
        let mut surplus: Vec<(usize, u64)> = Vec::new(); // (node, batches to send)
        let mut deficit: Vec<(usize, u64)> = Vec::new();
        for i in 0..n {
            let old = movable[i];
            let new = new_batches[i];
            if old > new {
                surplus.push((i, old - new));
            } else if new > old {
                deficit.push((i, new - old));
            }
        }
        let mut di = 0usize;
        for (from, mut give) in surplus {
            while give > 0 && di < deficit.len() {
                let (to, need) = &mut deficit[di];
                let b = give.min(*need);
                let a = b * self.batch_cap;
                let wire = self.net.model().migration_time(a, self.bytes_per_task);
                let (lane, start, arrive) = self.net.migrate(now, a, self.bytes_per_task);
                self.nodes[from].queue -= a;
                self.des.schedule(
                    arrive,
                    Ev::Arrive {
                        to: *to,
                        from,
                        tasks: a,
                    },
                );
                self.journal_migration(
                    BalanceKind::Repartition,
                    from,
                    *to,
                    a,
                    lane,
                    start,
                    arrive,
                    now,
                );
                self.report.migrated_tasks += a;
                self.report.migrated_bytes += a * self.bytes_per_task;
                self.report.migration_wire += wire;
                moved_any = true;
                give -= b;
                *need -= b;
                if *need == 0 {
                    di += 1;
                }
            }
        }
        if moved_any {
            self.report.repartitions += 1;
        }
    }

    /// Runs the event loop to completion.
    fn run(&mut self) -> Vec<NodeOutcome> {
        while let Some((now, ev)) = self.des.pop() {
            match ev {
                Ev::BatchDone(i) => {
                    if self.nodes[i].busy_until != now {
                        continue; // stale: an arrival already restarted the node
                    }
                    if self.nodes[i].queue > 0 {
                        self.start_batch(i, now);
                        if self.nodes[i].queue == 0 {
                            // Prefetch: overlap the next steal's wire
                            // time with the batch in service.
                            self.try_steal(i, now);
                        }
                    } else {
                        self.try_steal(i, now);
                    }
                }
                Ev::Arrive { to, from, tasks } => {
                    let _ = from;
                    self.inflight = self.inflight.saturating_sub(1);
                    self.nodes[to].awaiting = false;
                    self.nodes[to].queue += tasks;
                    if self.nodes[to].busy_until <= now {
                        self.start_batch(to, now);
                    }
                    if self.nodes[to].queue == 0 {
                        self.try_steal(to, now);
                    }
                    // A freed in-flight slot may unblock parked thieves.
                    for i in 0..self.nodes.len() {
                        let nd = &self.nodes[i];
                        if i != to && nd.queue == 0 && !nd.awaiting && nd.busy_until <= now {
                            self.try_steal(i, now);
                        }
                    }
                }
                Ev::Epoch(_) => self.epoch(now),
            }
        }
        self.nodes
            .iter()
            .map(|nd| {
                debug_assert_eq!(nd.queue, 0, "work left behind");
                NodeOutcome {
                    executed: nd.executed,
                    finish: nd.finished,
                }
            })
            .collect()
    }
}

impl ClusterSim {
    /// [`ClusterSim::run_recorded`] under a [`BalanceMode`]: the whole
    /// cluster advances through one discrete-event simulation, so
    /// drained nodes can steal batched work (or epochs can repartition
    /// it) with migration cost charged through the contention-aware
    /// interconnect. `Static` reproduces the per-node baseline inside
    /// the same cost model, which is what the dynamic modes are
    /// guaranteed against.
    pub fn run_balanced<R: Recorder>(
        &self,
        population: &TaskPopulation,
        mode: ResourceMode,
        bmode: BalanceMode,
        rec: &mut R,
    ) -> (ClusterReport, BalanceReport) {
        let (report, bal, _) = self.run_balanced_with_faults(
            population,
            mode,
            bmode,
            &[],
            RecoveryPolicy::default(),
            rec,
        );
        (report, bal)
    }

    /// [`ClusterSim::run_balanced`] under per-node fault schedules
    /// (compare [`ClusterSim::run_with_faults`]). Faulty nodes calibrate
    /// with their plan active, so a quarantined-GPU node or a straggler
    /// runs at its degraded rate and naturally becomes a steal victim —
    /// load sheds to healthy nodes instead of the straggler setting the
    /// makespan. With all-empty plans the result is bit-identical to
    /// [`ClusterSim::run_balanced`]'s.
    ///
    /// Returns the cluster report, the migration accounting, and one
    /// [`FaultSummary`] per node (conservation holds against the task
    /// count the node *actually executed* after migration).
    pub fn run_balanced_with_faults<R: Recorder>(
        &self,
        population: &TaskPopulation,
        mode: ResourceMode,
        bmode: BalanceMode,
        plans: &[FaultPlan],
        policy: RecoveryPolicy,
        rec: &mut R,
    ) -> (ClusterReport, BalanceReport, Vec<FaultSummary>) {
        let spec = population.spec;
        let n = population.per_node.len();
        let result_bytes = 8 * (spec.k as u64).pow(spec.d as u32);
        let none = FaultPlan::none();

        // Calibration: healthy nodes share one rate; each faulty plan
        // calibrates with its injector active.
        let healthy = self.node().calibrate(&spec, mode, &none, policy);
        let rates: Vec<NodeRate> = (0..n)
            .map(|i| {
                let plan = plans.get(i).unwrap_or(&none);
                if FaultInjector::new(plan).is_inert() {
                    healthy
                } else {
                    if R::ENABLED && plan.straggler_multiplier() != 1.0 {
                        rec.fault(FaultEvent {
                            kind: FaultKind::SlowNode,
                            action: FaultAction::Injected,
                            at_ns: 0,
                            tasks: population.per_node[i],
                        });
                    }
                    self.node().calibrate(&spec, mode, plan, policy)
                }
            })
            .collect();

        // Seed the DES: every node spins up at its startup time with its
        // static partition queued.
        let mut des = Des::new();
        let mean_rate =
            rates.iter().map(|r| r.per_task.as_secs_f64()).sum::<f64>() / n.max(1) as f64;
        let nodes: Vec<BalNode> = (0..n)
            .map(|i| BalNode {
                rate: rates[i],
                queue: population.per_node[i],
                executed: 0,
                busy_until: rates[i].startup,
                finished: SimTime::ZERO,
                awaiting: false,
                // Repartition must *learn* heterogeneity: everyone
                // starts from the cluster-mean prior.
                ewma_rate: mean_rate,
            })
            .collect();
        for (i, nd) in nodes.iter().enumerate() {
            des.schedule(nd.busy_until, Ev::BatchDone(i));
        }
        if let BalanceMode::Repartition { epochs } = bmode {
            let horizon = nodes
                .iter()
                .map(BalNode::compute_est)
                .max()
                .unwrap_or(SimTime::ZERO);
            let interval = horizon / (u64::from(epochs) + 1);
            for e in 0..epochs {
                des.schedule(interval * (u64::from(e) + 1), Ev::Epoch(e));
            }
        }
        let batch_cap = (self.node().params().batch.max_batch as u64).max(1);
        let mut cluster = BalCluster {
            nodes,
            des,
            net: Interconnect::new(self.network().clone()),
            batch_cap,
            bytes_per_task: result_bytes,
            mode: bmode,
            inflight: 0,
            report: BalanceReport::default(),
            rec,
        };
        let outcomes = cluster.run();
        let bal = cluster.report;
        debug_assert_eq!(
            outcomes.iter().map(|o| o.executed).sum::<u64>(),
            population.total(),
            "migration lost or duplicated tasks"
        );

        // Fidelity pass: re-run each node's pipeline on what it actually
        // executed for busy-time breakdowns and fault conservation; the
        // DES finish time overrides the isolated total. Network
        // injection (plus fault-plan message-drop retransmits) rides on
        // the executed counts exactly as in `run_with_faults`.
        let mut summaries = Vec::with_capacity(n);
        let mut total = SimTime::ZERO;
        let mut slowest = 0usize;
        let mut network_time = SimTime::ZERO;
        let mut reports = Vec::with_capacity(n);
        for (i, out) in outcomes.iter().enumerate() {
            let plan = plans.get(i).unwrap_or(&none);
            let (mut report, mut summary) =
                self.node()
                    .simulate_faulty(&spec, out.executed, mode, plan, policy, rec);
            report.total = out.finish;
            let (msgs, bytes, net) = self.network().injection(out.executed, result_bytes);
            let mut net_inj = FaultInjector::new(plan);
            let dropped = net_inj.dropped_messages(msgs, report.total.as_nanos());
            let net = if dropped > 0 {
                summary.dropped_messages += dropped;
                let per_msg = if msgs > 0 {
                    SimTime::from_secs_f64(bytes as f64 / msgs as f64 / self.network().bandwidth)
                } else {
                    SimTime::ZERO
                };
                let retrans = (self.network().latency * 2 + per_msg) * dropped;
                if R::ENABLED {
                    rec.fault(FaultEvent {
                        kind: FaultKind::DroppedMessage,
                        action: FaultAction::Resent,
                        at_ns: (report.total + net).as_nanos(),
                        tasks: dropped,
                    });
                }
                net + retrans
            } else {
                net
            };
            if R::ENABLED && msgs > 0 {
                rec.event(Stage::NetSend, report.total.as_nanos(), bytes);
                rec.add("net_msgs_sent", msgs);
                rec.add("net_bytes_sent", bytes);
            }
            let node_total = report.total.max(net);
            if node_total > total {
                total = node_total;
                slowest = i;
            }
            network_time = network_time.max(net);
            reports.push(report);
            summaries.push(summary);
        }
        (
            ClusterReport {
                total,
                nodes: reports,
                slowest_node: slowest,
                network_time,
                total_tasks: population.total(),
            },
            bal,
            summaries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use crate::node::{NodeParams, NodeSim};
    use crate::workload::WorkloadSpec;
    use madness_gpusim::KernelKind;
    use madness_trace::{MemRecorder, NullRecorder};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            d: 3,
            k: 10,
            rank: 100,
            rr_mean_rank: None,
        }
    }

    fn sim() -> ClusterSim {
        ClusterSim::new(NodeSim::new(NodeParams::default()), NetworkModel::default())
    }

    fn hybrid() -> ResourceMode {
        ResourceMode::Hybrid {
            compute_threads: 10,
            data_threads: 5,
            streams: 5,
            kernel: KernelKind::CustomMtxmq,
        }
    }

    fn steal() -> BalanceMode {
        BalanceMode::Steal {
            min_batch: 60,
            max_inflight: 8,
        }
    }

    fn lumpy(n_nodes: usize, loaded: usize, tasks_each: u64) -> TaskPopulation {
        let mut per_node = vec![0u64; n_nodes];
        for t in per_node.iter_mut().take(loaded) {
            *t = tasks_each;
        }
        TaskPopulation {
            spec: spec(),
            per_node,
        }
    }

    #[test]
    fn static_mode_matches_calibrated_makespan() {
        let s = sim();
        let pop = lumpy(4, 2, 12_000);
        let (r, bal) = s.run_balanced(
            &pop,
            ResourceMode::CpuOnly { threads: 16 },
            BalanceMode::Static,
            &mut NullRecorder,
        );
        assert_eq!(bal.steals, 0);
        assert_eq!(bal.migrated_tasks, 0);
        let rate = s.node().calibrate(
            &spec(),
            ResourceMode::CpuOnly { threads: 16 },
            &FaultPlan::none(),
            RecoveryPolicy::default(),
        );
        let expect = rate.startup + rate.per_task * 12_000;
        assert_eq!(r.total, expect.max(r.network_time));
    }

    #[test]
    fn steal_beats_static_on_lumpy_partition() {
        let s = sim();
        let pop = lumpy(8, 2, 24_000);
        let mode = ResourceMode::CpuOnly { threads: 16 };
        let (st, _) = s.run_balanced(&pop, mode, BalanceMode::Static, &mut NullRecorder);
        let (dy, bal) = s.run_balanced(&pop, mode, steal(), &mut NullRecorder);
        assert!(bal.steals > 0, "idle nodes must steal");
        assert!(
            dy.total.as_secs_f64() < 0.5 * st.total.as_secs_f64(),
            "steal {} vs static {}",
            dy.total,
            st.total
        );
        assert!(dy.balance() > st.balance());
    }

    #[test]
    fn steal_is_inert_on_even_population() {
        let s = sim();
        let pop = TaskPopulation::even(spec(), 48_000, 8);
        let mode = ResourceMode::CpuOnly { threads: 16 };
        let (st, _) = s.run_balanced(&pop, mode, BalanceMode::Static, &mut NullRecorder);
        let (dy, bal) = s.run_balanced(&pop, mode, steal(), &mut NullRecorder);
        assert!(dy.total <= st.total);
        // Whatever it stole (the ±1-task remainder spread), the result
        // must not be worse.
        assert!(bal.migrated_tasks <= 8 * 60);
    }

    #[test]
    fn repartition_beats_static_on_lumpy_partition() {
        let s = sim();
        let pop = lumpy(8, 2, 24_000);
        let mode = ResourceMode::CpuOnly { threads: 16 };
        let (st, _) = s.run_balanced(&pop, mode, BalanceMode::Static, &mut NullRecorder);
        let (rp, bal) = s.run_balanced(
            &pop,
            mode,
            BalanceMode::Repartition { epochs: 4 },
            &mut NullRecorder,
        );
        assert!(bal.repartitions > 0, "epochs must move work");
        assert!(
            rp.total.as_secs_f64() < 0.7 * st.total.as_secs_f64(),
            "repartition {} vs static {}",
            rp.total,
            st.total
        );
    }

    #[test]
    fn migrations_are_journaled() {
        let s = sim();
        let pop = lumpy(4, 1, 6_000);
        let mut rec = MemRecorder::new();
        let (_, bal) = s.run_balanced(
            &pop,
            ResourceMode::CpuOnly { threads: 16 },
            steal(),
            &mut rec,
        );
        assert!(bal.steals > 0);
        let events: Vec<_> = rec.balance_events().collect();
        assert_eq!(events.len(), bal.steals as usize);
        assert!(events.iter().all(|e| e.kind == BalanceKind::Steal));
        assert_eq!(
            events.iter().map(|e| e.tasks).sum::<u64>(),
            bal.migrated_tasks
        );
        assert!(rec.spans().any(|sp| sp.stage == Stage::Migrate));
        assert_eq!(rec.metrics().counter("migrated_tasks"), bal.migrated_tasks);
        // Round-trip through JSON keeps the migration journal.
        let back = MemRecorder::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn fault_free_identity_with_empty_plans() {
        let s = sim();
        let pop = lumpy(4, 2, 6_000);
        let mut rec_a = MemRecorder::new();
        let mut rec_b = MemRecorder::new();
        let (ra, ba) = s.run_balanced(&pop, hybrid(), steal(), &mut rec_a);
        let (rb, bb, sums) = s.run_balanced_with_faults(
            &pop,
            hybrid(),
            steal(),
            &[],
            RecoveryPolicy::default(),
            &mut rec_b,
        );
        assert_eq!(ra, rb);
        assert_eq!(ba, bb);
        assert_eq!(rec_a.to_json(), rec_b.to_json());
        let executed: Vec<u64> = sums
            .iter()
            .map(|s| s.completed_cpu + s.completed_gpu)
            .collect();
        assert_eq!(executed.iter().sum::<u64>(), pop.total());
    }

    #[test]
    fn straggler_sheds_load_to_healthy_nodes() {
        let s = sim();
        let pop = TaskPopulation::even(spec(), 24_000, 4);
        let mode = ResourceMode::CpuOnly { threads: 16 };
        let mut plans = vec![FaultPlan::none(); 4];
        plans[1] = FaultPlan::none().with_straggler(4.0);
        let policy = RecoveryPolicy::default();
        // Static under the same DES cost model: the straggler sets the
        // makespan.
        let (st, _, _) = s.run_balanced_with_faults(
            &pop,
            mode,
            BalanceMode::Static,
            &plans,
            policy,
            &mut NullRecorder,
        );
        assert_eq!(st.slowest_node, 1);
        let (dy, bal, sums) =
            s.run_balanced_with_faults(&pop, mode, steal(), &plans, policy, &mut NullRecorder);
        assert!(bal.steals > 0, "healthy nodes must relieve the straggler");
        assert!(
            dy.total.as_secs_f64() < 0.8 * st.total.as_secs_f64(),
            "steal {} vs static {}",
            dy.total,
            st.total
        );
        // The straggler executed less than its static share.
        let straggler_done = sums[1].completed_cpu + sums[1].completed_gpu;
        assert!(straggler_done < pop.per_node[1]);
        assert_eq!(
            sums.iter()
                .map(|s| s.completed_cpu + s.completed_gpu + s.lost)
                .sum::<u64>(),
            pop.total()
        );
    }

    #[test]
    fn quarantined_gpu_node_becomes_victim() {
        let s = sim();
        let pop = TaskPopulation::even(spec(), 16_000, 4);
        let mut plans = vec![FaultPlan::none(); 4];
        // A GPU that loses its device early runs on the CPU fallback —
        // much slower in GPU-heavy mode.
        plans[2] = FaultPlan::seeded(7).with_launch_fail_rate(0.9);
        let policy = RecoveryPolicy::default();
        let mut rec = MemRecorder::new();
        let (_, bal, _) =
            s.run_balanced_with_faults(&pop, hybrid(), steal(), &plans, policy, &mut rec);
        assert!(bal.steals > 0, "the degraded node must be relieved");
        // Every steal takes work away from a node; the degraded node
        // must appear as a victim at least once.
        assert!(
            rec.balance_events().any(|e| e.from_node == 2),
            "node 2 never shed load"
        );
    }

    #[test]
    fn empty_nodes_steal_work() {
        let s = sim();
        let pop = lumpy(16, 1, 30_000);
        let mode = ResourceMode::CpuOnly { threads: 16 };
        let (dy, bal) = s.run_balanced(&pop, mode, steal(), &mut NullRecorder);
        assert!(bal.steals >= 10, "only {} steals", bal.steals);
        assert!(dy.balance() > 0.5, "balance {}", dy.balance());
        assert_eq!(dy.total_tasks, 30_000);
    }
}
