//! A minimal discrete-event simulation core.
//!
//! Two primitives suffice for the node pipeline:
//!
//! * [`Des`] — an event heap delivering `(time, payload)` pairs in
//!   chronological order (FIFO-stable within a timestamp);
//! * [`FifoResource`] — a capacity-`c` resource (CPU lanes, GPU streams,
//!   the single dispatcher thread) that serves enqueued work items in
//!   arrival order and reports each item's completion time.

use madness_gpusim::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event heap over payloads `E`.
#[derive(Debug)]
pub struct Des<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct EventSlot<E>(E);

// Manual impls so E itself needs no ordering.
impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Des<E> {
    /// An empty simulation at time zero.
    pub fn new() -> Self {
        Des {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse((at, self.seq, EventSlot(payload))));
        self.seq += 1;
    }

    /// Schedules `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        let at = self.now + delay;
        self.heap.push(Reverse((at, self.seq, EventSlot(payload))));
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, EventSlot(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Timestamp of the next event without popping it (the clock does
    /// not advance).
    pub fn peek(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Des<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A FIFO resource with `capacity` identical lanes (greedy assignment:
/// each item starts on the earliest-free lane, no earlier than its
/// release time).
#[derive(Clone, Debug)]
pub struct FifoResource {
    lanes: Vec<SimTime>,
    busy: SimTime,
    served: u64,
}

impl FifoResource {
    /// A resource with `capacity` lanes, all free at time zero.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource needs capacity");
        FifoResource {
            lanes: vec![SimTime::ZERO; capacity],
            busy: SimTime::ZERO,
            served: 0,
        }
    }

    /// Number of lanes.
    pub fn capacity(&self) -> usize {
        self.lanes.len()
    }

    /// Enqueues an item released at `release` needing `duration`;
    /// returns `(start, end)`.
    pub fn serve(&mut self, release: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let (_, start, end) = self.serve_on(release, duration);
        (start, end)
    }

    /// Like [`FifoResource::serve`], also reporting which lane served the
    /// item (for trace journals).
    pub fn serve_on(&mut self, release: SimTime, duration: SimTime) -> (usize, SimTime, SimTime) {
        let (idx, &free) = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("capacity > 0");
        let start = free.max(release);
        let end = start + duration;
        self.lanes[idx] = end;
        self.busy += duration;
        self.served += 1;
        (idx, start, end)
    }

    /// The next possible start time for an item released at `release`
    /// (what [`FifoResource::serve`] would return as `start`), without
    /// enqueuing anything.
    pub fn next_start(&self, release: SimTime) -> SimTime {
        self.lanes
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
            .max(release)
    }

    /// Time when every lane is free (the resource's makespan).
    pub fn makespan(&self) -> SimTime {
        self.lanes.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Aggregate busy time across lanes.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Utilization in `[0, 1]` relative to `capacity × makespan`.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan().as_secs_f64() * self.capacity() as f64;
        if span == 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / span
        }
    }

    /// Items served so far.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut des: Des<&str> = Des::new();
        des.schedule(SimTime::from_micros(30), "c");
        des.schedule(SimTime::from_micros(10), "a");
        des.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| des.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(des.now(), SimTime::from_micros(30));
    }

    #[test]
    fn ties_are_fifo_stable() {
        let mut des: Des<u32> = Des::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            des.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| des.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut des: Des<&str> = Des::new();
        des.schedule(SimTime::from_micros(10), "first");
        des.pop();
        des.schedule_in(SimTime::from_micros(5), "second");
        let (t, _) = des.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut des: Des<()> = Des::new();
        des.schedule(SimTime::from_micros(10), ());
        des.pop();
        des.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn single_lane_serializes() {
        let mut r = FifoResource::new(1);
        let d = SimTime::from_micros(10);
        let (s1, e1) = r.serve(SimTime::ZERO, d);
        let (s2, e2) = r.serve(SimTime::ZERO, d);
        assert_eq!((s1, e1), (SimTime::ZERO, d));
        assert_eq!((s2, e2), (d, d * 2));
        assert_eq!(r.makespan(), d * 2);
        assert_eq!(r.served(), 2);
    }

    #[test]
    fn multiple_lanes_run_concurrently() {
        let mut r = FifoResource::new(4);
        let d = SimTime::from_micros(10);
        for _ in 0..8 {
            r.serve(SimTime::ZERO, d);
        }
        assert_eq!(r.makespan(), d * 2); // 8 items / 4 lanes
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn release_time_delays_start() {
        let mut r = FifoResource::new(2);
        let (s, _) = r.serve(SimTime::from_micros(100), SimTime::from_micros(1));
        assert_eq!(s, SimTime::from_micros(100));
    }

    #[test]
    fn utilization_reflects_idle_lanes() {
        let mut r = FifoResource::new(2);
        r.serve(SimTime::ZERO, SimTime::from_micros(10));
        // One lane busy 10 µs, the other idle ⇒ 50 %.
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }
}
