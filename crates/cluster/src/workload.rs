//! Apply task populations: what a node actually has to compute.
//!
//! One Apply *task* is (tree node × displacement): Algorithm 3 spawns
//! `integral_preprocess(source, displacement)` for every displacement of
//! every coefficient-carrying node. A [`WorkloadSpec`] captures the
//! homogeneous shape parameters; [`TaskPopulation`] holds the per-owner
//! task counts a process map induces on a concrete tree.

use madness_mra::procmap::ProcessMap;
use madness_mra::tree::FunctionTree;
use madness_tensor::flops::apply_task_flops;

/// Shape of every task in a (homogeneous) Apply workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Tensor dimensionality.
    pub d: usize,
    /// Polynomial order per dimension.
    pub k: usize,
    /// Separation rank `M` of the operator.
    pub rank: usize,
    /// Average effective rank per dimension under rank reduction, if the
    /// CPU path uses it (`None` = full rank everywhere).
    pub rr_mean_rank: Option<usize>,
}

impl WorkloadSpec {
    /// FLOPs of one task without rank reduction.
    pub fn task_flops(&self) -> u64 {
        apply_task_flops(self.d, self.k, self.rank)
    }

    /// FLOPs of one task on the CPU, honouring rank reduction.
    pub fn task_flops_cpu(&self) -> u64 {
        match self.rr_mean_rank {
            Some(kr) => {
                let krs = vec![kr.min(self.k); self.d];
                (self.rank as u64) * madness_tensor::flops::transform_rr_flops(self.d, self.k, &krs)
            }
            None => self.task_flops(),
        }
    }
}

/// The tasks of one Apply invocation, partitioned over compute nodes.
#[derive(Clone, Debug)]
pub struct TaskPopulation {
    /// Shared task shape.
    pub spec: WorkloadSpec,
    /// Tasks owned by each compute node (`len() == n_nodes`).
    pub per_node: Vec<u64>,
}

impl TaskPopulation {
    /// Total tasks across the cluster.
    pub fn total(&self) -> u64 {
        self.per_node.iter().sum()
    }

    /// The heaviest node's share.
    pub fn max_per_node(&self) -> u64 {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance: `max / mean` (1.0 = perfectly even).
    ///
    /// Degenerate partitions read as perfectly even rather than
    /// poisoning downstream gates: an empty partition (`per_node` empty)
    /// would otherwise divide by a zero length and return NaN, and an
    /// all-zero partition would compute 0/0.
    pub fn imbalance(&self) -> f64 {
        if self.per_node.is_empty() {
            return 1.0;
        }
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_node.len() as f64;
        self.max_per_node() as f64 / mean
    }

    /// Partitions a tree's Apply tasks across `n_nodes` by a process map:
    /// every coefficient-carrying leaf contributes `n_displacements`
    /// tasks to its owner.
    ///
    /// Displacements that fall off the domain edge are still counted
    /// against the interior estimate by the caller's choice of
    /// `n_displacements`; the paper's task counts (154,468 / 542,113) are
    /// quoted the same way — per (node, displacement) pair actually
    /// spawned. Use [`TaskPopulation::from_tree_exact`] for edge-exact
    /// counting.
    pub fn from_tree(
        tree: &FunctionTree,
        spec: WorkloadSpec,
        map: &dyn ProcessMap,
        n_nodes: usize,
        n_displacements: u64,
    ) -> Self {
        assert!(n_nodes > 0, "cluster must have nodes");
        let mut per_node = vec![0u64; n_nodes];
        for (key, node) in tree.iter() {
            if node.is_leaf() {
                per_node[map.owner(key, n_nodes)] += n_displacements;
            }
        }
        TaskPopulation { spec, per_node }
    }

    /// Edge-exact partition: counts only displacements whose neighbor
    /// stays inside the domain.
    pub fn from_tree_exact(
        tree: &FunctionTree,
        spec: WorkloadSpec,
        map: &dyn ProcessMap,
        n_nodes: usize,
        displacements: &[madness_mra::convolution::Displacement],
    ) -> Self {
        assert!(n_nodes > 0, "cluster must have nodes");
        let mut per_node = vec![0u64; n_nodes];
        for (key, node) in tree.iter() {
            if !node.is_leaf() {
                continue;
            }
            let owner = map.owner(key, n_nodes);
            let alive = displacements
                .iter()
                .filter(|disp| key.neighbor(&disp.delta).is_some())
                .count() as u64;
            per_node[owner] += alive;
        }
        TaskPopulation { spec, per_node }
    }

    /// A synthetic population with `total` tasks spread evenly (for unit
    /// tests and calibration sweeps).
    pub fn even(spec: WorkloadSpec, total: u64, n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        let base = total / n_nodes as u64;
        let rem = (total % n_nodes as u64) as usize;
        let per_node = (0..n_nodes).map(|i| base + u64::from(i < rem)).collect();
        TaskPopulation { spec, per_node }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madness_mra::procmap::{EvenMap, SubtreeMap};
    use madness_mra::synth::{synthesize_tree, SynthTreeParams};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            d: 3,
            k: 10,
            rank: 100,
            rr_mean_rank: None,
        }
    }

    fn tree(leaves: usize) -> FunctionTree {
        synthesize_tree(
            3,
            10,
            &SynthTreeParams {
                target_leaves: leaves,
                centers: vec![vec![0.4, 0.5, 0.6]],
                with_coeffs: false,
                ..SynthTreeParams::default()
            },
        )
    }

    #[test]
    fn task_flops_match_formula() {
        assert_eq!(spec().task_flops(), 100 * 3 * 2 * 10_000);
        let rr = WorkloadSpec {
            rr_mean_rank: Some(4),
            ..spec()
        };
        assert_eq!(rr.task_flops_cpu(), rr.task_flops() * 4 / 10);
        assert_eq!(rr.task_flops(), spec().task_flops());
    }

    #[test]
    fn even_population_balances() {
        let p = TaskPopulation::even(spec(), 103, 10);
        assert_eq!(p.total(), 103);
        assert_eq!(p.max_per_node(), 11);
        assert!(p.imbalance() < 1.07);
    }

    #[test]
    fn degenerate_partitions_read_as_even_not_nan() {
        // Empty partition: no nodes at all.
        let empty = TaskPopulation {
            spec: spec(),
            per_node: vec![],
        };
        assert_eq!(empty.imbalance(), 1.0);
        // All-zero partition: nodes exist, no tasks.
        let idle = TaskPopulation {
            spec: spec(),
            per_node: vec![0, 0, 0],
        };
        assert_eq!(idle.imbalance(), 1.0);
        // Neither may poison a numeric gate downstream.
        assert!(empty.imbalance().is_finite());
        assert!(idle.imbalance().is_finite());
    }

    #[test]
    fn even_map_partition_is_roughly_balanced() {
        let t = tree(2000);
        let p = TaskPopulation::from_tree(&t, spec(), &EvenMap, 16, 27);
        assert_eq!(p.total(), t.num_leaves() as u64 * 27);
        assert!(p.imbalance() < 1.5, "imbalance {}", p.imbalance());
    }

    #[test]
    fn subtree_map_partition_is_lumpy() {
        let t = tree(2000);
        let even = TaskPopulation::from_tree(&t, spec(), &EvenMap, 8, 27);
        let local = TaskPopulation::from_tree(&t, spec(), &SubtreeMap::new(1), 8, 27);
        assert!(
            local.imbalance() > even.imbalance(),
            "locality map should be less balanced: {} vs {}",
            local.imbalance(),
            even.imbalance()
        );
    }

    #[test]
    fn edge_exact_counts_no_more_than_full() {
        let t = tree(500);
        let op = madness_mra::SeparatedConvolution::gaussian_sum(3, 10, 2, 1.0, 10.0);
        let disps = op.displacements();
        let exact = TaskPopulation::from_tree_exact(&t, spec(), &EvenMap, 4, &disps);
        let full = TaskPopulation::from_tree(&t, spec(), &EvenMap, 4, disps.len() as u64);
        assert!(exact.total() <= full.total());
        assert!(exact.total() > full.total() / 2);
    }
}
