//! # madness-cluster
//!
//! A discrete-event simulator of the Titan partition the paper ran on:
//! `N` compute nodes, each a 16-core AMD Interlagos CPU plus one Tesla
//! M2090 GPU, executing MADNESS Apply workloads under a *process map*
//! with static load balancing.
//!
//! Layers:
//!
//! * [`des`] — a minimal discrete-event core: an event heap and FIFO
//!   resources with capacities (CPU-thread lanes, GPU streams, the
//!   dispatcher thread);
//! * [`workload`] — homogeneous Apply task populations, derived from a
//!   real or synthetic function tree plus an operator's displacement
//!   list;
//! * [`node`] — one compute node's pipeline (Fig. 3 of the paper):
//!   preprocess → per-kind batching on a timer → dispatcher split →
//!   CPU threads ∥ GPU streams → postprocess, in CPU-only, GPU-only or
//!   hybrid mode;
//! * [`network`] — result-accumulation traffic (latency/bandwidth; the
//!   paper found Titan's network is not a bottleneck — the model lets us
//!   *check* that, not assume it);
//! * [`cluster`] — partition the tree by a process map, simulate every
//!   node, and take the makespan.
//!
//! All times are simulated ([`madness_gpusim::SimTime`]); the cluster
//! layer is timing-only by design (full-fidelity numerics live in
//! `madness-core`, which cross-checks single-node results).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod des;
pub mod network;
pub mod node;
pub mod workload;

pub use cluster::{ClusterReport, ClusterSim};
pub use des::{Des, FifoResource};
pub use network::NetworkModel;
pub use node::{FaultSummary, NodeParams, NodeReport, NodeSim, ResourceMode};
pub use workload::{TaskPopulation, WorkloadSpec};
