//! # madness-cluster
//!
//! A discrete-event simulator of the Titan partition the paper ran on:
//! `N` compute nodes, each a 16-core AMD Interlagos CPU plus one Tesla
//! M2090 GPU, executing MADNESS Apply workloads under a *process map*
//! — statically load balanced like the paper, or dynamically rebalanced
//! by the [`balance`] layer.
//!
//! Layers:
//!
//! * [`des`] — a minimal discrete-event core: an event heap and FIFO
//!   resources with capacities (CPU-thread lanes, GPU streams, the
//!   dispatcher thread);
//! * [`workload`] — homogeneous Apply task populations, derived from a
//!   real or synthetic function tree plus an operator's displacement
//!   list;
//! * [`node`] — one compute node's pipeline (Fig. 3 of the paper):
//!   preprocess → per-kind batching on a timer → dispatcher split →
//!   CPU threads ∥ GPU streams → postprocess, in CPU-only, GPU-only or
//!   hybrid mode;
//! * [`network`] — result-accumulation and migration traffic:
//!   per-message latency, pipelined injection, and a contended
//!   [`network::Interconnect`] of shared torus links (the paper found
//!   Titan's network is not a bottleneck — the model lets us *check*
//!   that, not assume it);
//! * [`cluster`] — partition the tree by a process map, simulate every
//!   node, and take the makespan;
//! * [`dag`] — DAG-aware node execution for chained-operator
//!   workloads: completion-triggered dataflow vs. a barrier-stepped
//!   baseline, with seeded fault retry/quarantine and the inter-stage
//!   overlap metric;
//! * [`balance`] — cluster-wide dynamic load balancing (DESIGN.md §10):
//!   drained nodes steal whole batches under a profit guard, or sync
//!   epochs repartition from measured rates, paying migration cost
//!   through the interconnect.
//!
//! All times are simulated ([`madness_gpusim::SimTime`]); the cluster
//! layer is timing-only by design (full-fidelity numerics live in
//! `madness-core`, which cross-checks single-node results).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod balance;
pub mod cluster;
pub mod dag;
pub mod des;
pub mod network;
pub mod node;
pub mod serve;
pub mod workload;

pub use balance::{BalanceMode, BalanceReport};
pub use cluster::{ClusterReport, ClusterSim};
pub use dag::{
    run_dag, run_dag_survivable, DagFaultSpec, DagMode, DagRunReport, DagSurvivalSpec, DagTask,
    DagWorkload, SurvivableDagReport,
};
pub use des::{Des, FifoResource};
pub use network::{Interconnect, NetworkModel};
pub use node::{FaultSummary, NodeParams, NodeRate, NodeReport, NodeSim, ResourceMode};
pub use serve::{
    generate_requests, KindLatency, LatencyStats, RateProfile, Request, ServeConfig, ServeReport,
    ShedPolicy, TenantReport, TenantSpec,
};
pub use workload::{TaskPopulation, WorkloadSpec};
