//! Inter-node communication model.
//!
//! Apply's only cross-node traffic is the `postprocess` accumulation of
//! result tensors into neighbor tree nodes owned elsewhere. The paper
//! reports that "MADNESS on a cluster already efficiently handles
//! communications between compute nodes and Titan does not introduce
//! additional bottlenecks" — this model exists so the experiments can
//! *verify* that claim (communication overlaps computation and is orders
//! of magnitude smaller), not assume it silently.
//!
//! Two layers:
//!
//! * [`NetworkModel`] — closed-form injection time for one node's
//!   accumulation traffic (latency, bandwidth, in-flight pipelining);
//! * [`Interconnect`] — a stateful, contention-aware view of the same
//!   fabric used by the cluster DES: migrations share a fixed number of
//!   torus links ([`NetworkModel::links`]) through a FIFO resource, so
//!   concurrent transfers queue instead of overlapping for free.

use crate::des::FifoResource;
use madness_gpusim::SimTime;

/// Latency/bandwidth model of the interconnect (defaults approximate
/// Titan's Cray Gemini 3-D torus).
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: SimTime,
    /// Per-link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Fraction of a node's accumulations that leave the node (depends
    /// on the process map: a locality map keeps most neighbors local).
    pub remote_fraction: f64,
    /// Torus links a node's traffic is spread over (a Gemini NIC routes
    /// onto several torus directions); bounds concurrent migrations.
    pub links: usize,
    /// Messages the NIC keeps in flight per stream: bounds how much
    /// per-message latency can be hidden by pipelining.
    pub max_inflight: usize,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            latency: SimTime::from_micros(2),
            bandwidth: 5.0e9,
            remote_fraction: 0.3,
            links: 4,
            max_inflight: 64,
        }
    }
}

impl NetworkModel {
    /// Time one node spends injecting its remote accumulation traffic:
    /// `n_tasks × remote_fraction` messages of `bytes_per_msg` each,
    /// pipelined (latency paid once per message, but overlapped with the
    /// streaming of up to [`NetworkModel::max_inflight`] other messages).
    pub fn injection_time(&self, n_tasks: u64, bytes_per_msg: u64) -> SimTime {
        self.injection(n_tasks, bytes_per_msg).2
    }

    /// [`NetworkModel::injection_time`] plus the traffic it accounts:
    /// `(messages, bytes, time)` — what a trace recorder journals.
    pub fn injection(&self, n_tasks: u64, bytes_per_msg: u64) -> (u64, u64, SimTime) {
        let msgs = (n_tasks as f64 * self.remote_fraction).ceil() as u64;
        let bytes = msgs * bytes_per_msg;
        (msgs, bytes, self.transfer_time(msgs, bytes_per_msg))
    }

    /// Wire time for `msgs` back-to-back messages of `bytes_per_msg`
    /// each on one stream.
    ///
    /// Each message pays serialization `s = bytes/bandwidth` and latency
    /// `L`, but the NIC keeps up to `max_inflight` messages in flight,
    /// so consecutive message *starts* are separated by
    /// `gap = max(s, (s + L) / max_inflight)`:
    ///
    /// * bandwidth-bound (`s ≥ (s+L)/W`): the wire is saturated and the
    ///   total is `L + msgs × s` — latency exposed exactly once;
    /// * latency-bound (tiny messages): the in-flight window caps how
    ///   many latencies overlap, leaving `(s+L)/W` of residual exposure
    ///   per message, which keeps the total strictly monotone in `msgs`.
    pub fn transfer_time(&self, msgs: u64, bytes_per_msg: u64) -> SimTime {
        if msgs == 0 {
            return SimTime::ZERO;
        }
        let s = bytes_per_msg as f64 / self.bandwidth;
        let l = self.latency.as_secs_f64();
        let window = self.max_inflight.max(1) as f64;
        if s * window >= s + l {
            // Saturated wire: identical to streaming the total byte count
            // behind one exposed latency.
            self.latency + SimTime::from_secs_f64(msgs as f64 * s)
        } else {
            let gap = (s + l) / window;
            self.latency + SimTime::from_secs_f64(s + gap * (msgs - 1) as f64)
        }
    }

    /// Wire time for a migrated batch of `tasks` tasks (one message per
    /// task, `bytes_per_task` each): what a steal transfer occupies a
    /// link for.
    pub fn migration_time(&self, tasks: u64, bytes_per_task: u64) -> SimTime {
        self.transfer_time(tasks, bytes_per_task)
    }
}

/// A stateful, contention-aware view of the fabric for the cluster DES:
/// migration transfers are served FIFO across [`NetworkModel::links`]
/// shared links, so simultaneous steals queue behind each other instead
/// of each seeing an idle network.
#[derive(Debug)]
pub struct Interconnect {
    model: NetworkModel,
    links: FifoResource,
    transfers: u64,
    bytes_moved: u64,
}

impl Interconnect {
    /// A quiet fabric under `model`.
    pub fn new(model: NetworkModel) -> Self {
        let links = FifoResource::new(model.links.max(1));
        Interconnect {
            model,
            links,
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// The underlying closed-form model.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Books a migration of `tasks` tasks (`bytes_per_task` each)
    /// released at `release`; returns `(link, start, arrive)` — the
    /// transfer occupies one link for its whole wire time, so concurrent
    /// migrations contend.
    pub fn migrate(
        &mut self,
        release: SimTime,
        tasks: u64,
        bytes_per_task: u64,
    ) -> (usize, SimTime, SimTime) {
        let wire = self.model.migration_time(tasks, bytes_per_task);
        let (lane, start, end) = self.links.serve_on(release, wire);
        self.transfers += 1;
        self.bytes_moved += tasks * bytes_per_task;
        (lane, start, end)
    }

    /// Earliest time a transfer released at `release` could start
    /// (without booking it).
    pub fn next_start(&self, release: SimTime) -> SimTime {
        self.links.next_start(release)
    }

    /// Transfers booked so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes migrated so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Aggregate link-busy time (migration wire time across all links).
    pub fn busy_time(&self) -> SimTime {
        self.links.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tasks_zero_time() {
        let n = NetworkModel::default();
        assert_eq!(n.injection_time(0, 8000), SimTime::ZERO);
    }

    #[test]
    fn traffic_scales_with_messages() {
        let n = NetworkModel::default();
        let t1 = n.injection_time(1_000, 8_000);
        let t2 = n.injection_time(2_000, 8_000);
        assert!(t2 > t1);
        assert!(t2.as_secs_f64() < 2.05 * t1.as_secs_f64());
    }

    #[test]
    fn communication_is_not_the_bottleneck_at_paper_scale() {
        // Table VI: ~5.4 k tasks/node of k=14 4-D results (307 KB each).
        // Injection must be far below the ≥ 277 s compute times.
        let n = NetworkModel::default();
        let bytes = 8 * 14u64.pow(4);
        let t = n.injection_time(5_421, bytes);
        assert!(t.as_secs_f64() < 1.0, "network would bottleneck: {t}");
    }

    #[test]
    fn locality_map_reduces_traffic() {
        let mut n = NetworkModel::default();
        let even = n.injection_time(10_000, 8_000);
        n.remote_fraction = 0.05;
        let local = n.injection_time(10_000, 8_000);
        assert!(local < even);
    }

    #[test]
    fn injection_is_monotone_in_message_count_even_at_tiny_messages() {
        // The old formula charged latency once per injection, so at tiny
        // bytes_per_msg the time barely moved with message count; the
        // pipelined model must stay strictly monotone.
        let n = NetworkModel::default();
        for bytes_per_msg in [1, 8, 64, 160, 4_096, 307_328] {
            let mut prev = n.transfer_time(1, bytes_per_msg);
            for msgs in 2..200 {
                let t = n.transfer_time(msgs, bytes_per_msg);
                assert!(
                    t > prev,
                    "not monotone at {bytes_per_msg} B/msg, {msgs} msgs: {t} <= {prev}"
                );
                prev = t;
            }
        }
    }

    #[test]
    fn bandwidth_bound_regime_matches_streaming_formula() {
        // For paper-sized messages the in-flight window saturates the
        // wire and the total must equal latency + bytes/bandwidth — the
        // behavior every cluster experiment was calibrated against.
        let n = NetworkModel::default();
        let bytes_per_msg = 8 * 14u64.pow(4);
        let (msgs, bytes, t) = n.injection(5_421, bytes_per_msg);
        assert_eq!(bytes, msgs * bytes_per_msg);
        let streaming = n.latency + SimTime::from_secs_f64(bytes as f64 / n.bandwidth);
        assert_eq!(t, streaming);
    }

    #[test]
    fn latency_bound_messages_expose_residual_latency() {
        // 1-byte messages: serialization is ~0.2 ns but latency is 2 µs,
        // so each message past the window adds (s+L)/W of exposure.
        let n = NetworkModel::default();
        let t1 = n.transfer_time(1, 1);
        let t129 = n.transfer_time(129, 1);
        // 128 extra messages × ~(2 µs / 64) ≈ 4 µs beyond the first.
        let added = t129.saturating_sub(t1).as_secs_f64();
        assert!(
            added > 3.5e-6 && added < 4.5e-6,
            "residual exposure off: {added}"
        );
    }

    #[test]
    fn interconnect_contends_on_shared_links() {
        let model = NetworkModel::default();
        let links = model.links;
        let wire = model.migration_time(100, 8_000);
        let mut net = Interconnect::new(model);
        // links transfers run concurrently; one more must queue.
        let mut ends = Vec::new();
        for _ in 0..links + 1 {
            let (_, _, end) = net.migrate(SimTime::ZERO, 100, 8_000);
            ends.push(end);
        }
        for end in &ends[..links] {
            assert_eq!(*end, wire);
        }
        assert_eq!(ends[links], wire * 2);
        assert_eq!(net.transfers(), (links + 1) as u64);
        assert_eq!(net.bytes_moved(), (links as u64 + 1) * 100 * 8_000);
    }
}
