//! Inter-node communication model.
//!
//! Apply's only cross-node traffic is the `postprocess` accumulation of
//! result tensors into neighbor tree nodes owned elsewhere. The paper
//! reports that "MADNESS on a cluster already efficiently handles
//! communications between compute nodes and Titan does not introduce
//! additional bottlenecks" — this model exists so the experiments can
//! *verify* that claim (communication overlaps computation and is orders
//! of magnitude smaller), not assume it silently.

use madness_gpusim::SimTime;

/// Latency/bandwidth model of the interconnect (defaults approximate
/// Titan's Cray Gemini 3-D torus).
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: SimTime,
    /// Per-link bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Fraction of a node's accumulations that leave the node (depends
    /// on the process map: a locality map keeps most neighbors local).
    pub remote_fraction: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            latency: SimTime::from_micros(2),
            bandwidth: 5.0e9,
            remote_fraction: 0.3,
        }
    }
}

impl NetworkModel {
    /// Time one node spends injecting its remote accumulation traffic:
    /// `n_tasks × remote_fraction` messages of `bytes_per_msg` each,
    /// pipelined (latency paid once per message, bandwidth shared).
    pub fn injection_time(&self, n_tasks: u64, bytes_per_msg: u64) -> SimTime {
        self.injection(n_tasks, bytes_per_msg).2
    }

    /// [`NetworkModel::injection_time`] plus the traffic it accounts:
    /// `(messages, bytes, time)` — what a trace recorder journals.
    pub fn injection(&self, n_tasks: u64, bytes_per_msg: u64) -> (u64, u64, SimTime) {
        let msgs = (n_tasks as f64 * self.remote_fraction).ceil() as u64;
        if msgs == 0 {
            return (0, 0, SimTime::ZERO);
        }
        let bytes = msgs * bytes_per_msg;
        // Messages overlap on the NIC: latency of the first + streaming.
        let time = self.latency + SimTime::from_secs_f64(bytes as f64 / self.bandwidth);
        (msgs, bytes, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tasks_zero_time() {
        let n = NetworkModel::default();
        assert_eq!(n.injection_time(0, 8000), SimTime::ZERO);
    }

    #[test]
    fn traffic_scales_with_messages() {
        let n = NetworkModel::default();
        let t1 = n.injection_time(1_000, 8_000);
        let t2 = n.injection_time(2_000, 8_000);
        assert!(t2 > t1);
        assert!(t2.as_secs_f64() < 2.05 * t1.as_secs_f64());
    }

    #[test]
    fn communication_is_not_the_bottleneck_at_paper_scale() {
        // Table VI: ~5.4 k tasks/node of k=14 4-D results (307 KB each).
        // Injection must be far below the ≥ 277 s compute times.
        let n = NetworkModel::default();
        let bytes = 8 * 14u64.pow(4);
        let t = n.injection_time(5_421, bytes);
        assert!(t.as_secs_f64() < 1.0, "network would bottleneck: {t}");
    }

    #[test]
    fn locality_map_reduces_traffic() {
        let mut n = NetworkModel::default();
        let even = n.injection_time(10_000, 8_000);
        n.remote_fraction = 0.05;
        let local = n.injection_time(10_000, 8_000);
        assert!(local < even);
    }
}
