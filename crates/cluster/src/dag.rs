//! DAG-aware node execution: chained-operator workloads on the cluster.
//!
//! The batching pipeline of [`crate::node`] schedules one *flat* bag of
//! Apply tasks. Real MADNESS applications chain operators — an SCF
//! iteration applies the BSH Green's function, mixes, checks
//! convergence, and applies again — through a futures DAG with **no
//! global barrier between stages** (Harrison et al., arXiv:1507.01888).
//! This module executes such a [`DagWorkload`] on `N` simulated nodes
//! two ways:
//!
//! * [`DagMode::Dataflow`] — a task starts as soon as its predecessors
//!   have finished (plus a network hop when a value crosses nodes) and
//!   its chain's node is free; stages of different chains overlap
//!   freely, which is exactly the inter-stage overlap the trace
//!   sweep-line ([`madness_trace::stage_overlap_ns`]) measures;
//! * [`DagMode::Barrier`] — the bulk-synchronous baseline: tasks of
//!   global step `s` may not start until *every* task of step `s-1`
//!   has finished anywhere in the cluster. One stage runs at a time,
//!   so the overlap metric is zero by construction.
//!
//! Everything is simulated time on a calibrated [`NodeRate`] (the same
//! affine node model the serve/balance DES uses), so both modes — and
//! the seeded fault injection, which retries a failed attempt after a
//! backoff and quarantines a task's node assignment after repeated
//! failures — are bit-identical across runs with the same seed.
//!
//! # Survivable execution
//!
//! [`run_dag_survivable`] extends the Dataflow scheduler with
//! whole-node lifecycle faults ([`NodeFault`] via a resolved
//! [`NodeTimeline`]) and lineage-replay recovery:
//!
//! * **Frontier checkpoints** — completions feed a
//!   [`Frontier`] (`madness_runtime::graph`) over the same dependency
//!   structure; the checkpoint cut is quantised to
//!   [`DagSurvivalSpec::checkpoint_every`] boundaries. Values that
//!   finished at or before the last boundary are durable; values that
//!   finished after it die with their node.
//! * **Crash fold + replay** — when a node crashes, its post-cut
//!   completions are folded back ([`Frontier::fold_back`]), the
//!   crashed node's chains are reassigned over the survivors with
//!   [`lpt_assign`] (weights = pending work per chain, bases = each
//!   survivor's backlog), and the folded tasks re-execute in spawn
//!   order with fresh per-incarnation fault draws. Checkpointed
//!   frontier values still resident on a dead node migrate to the
//!   chain's new home through the contended [`Interconnect`]
//!   (journaled as [`Stage::Recover`] spans on the destination lane).
//! * **Tail speculation** — with
//!   [`DagSurvivalSpec::speculate_tails`], the chain tails on the
//!   static critical path launch a second copy on the least-loaded
//!   other node (state hop charged); first completion wins, ties go
//!   to the primary, and the loser is cancelled and accounted.
//!
//! The conservation law widens accordingly (see
//! [`SurvivableDagReport::conserved`]):
//!
//! ```text
//! tasks + injected + voided + speculative_copies
//!     == attempts_journaled + cancelled_copies
//! ```
//!
//! where `voided` counts attempt spans truncated by a crash plus
//! completions folded back to the checkpoint cut. An inert
//! [`DagSurvivalSpec`] is the identity: [`run_dag`] is exactly the
//! survivable engine with no timeline and no speculation.
//!
//! [`NodeFault`]: madness_faults::NodeFault
//! [`NodeTimeline`]: madness_faults::NodeTimeline
//! [`Frontier`]: madness_runtime::graph::Frontier
//! [`lpt_assign`]: madness_mra::procmap::lpt_assign
//! [`Stage::Recover`]: madness_trace::Stage::Recover

use crate::network::{Interconnect, NetworkModel};
use crate::node::NodeRate;
use madness_faults::NodeTimeline;
use madness_gpusim::SimTime;
use madness_mra::procmap::lpt_assign;
use madness_runtime::graph::{Frontier, FrontierSnapshot, TaskId};
use madness_trace::{stage_overlap_ns, FaultAction, FaultEvent, FaultKind, Recorder, Span, Stage};

/// Deterministic uniform draw in `[0, 1)` (stateless splitmix64, the
/// same construction the serving layer uses).
fn draw(seed: u64, salt: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.rotate_left(17))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Salt for first-incarnation per-attempt failure draws.
const SALT_FAIL: u64 = 0xDA6_FA11;
/// Salt base for post-crash replay incarnations (combined with the
/// incarnation count so each replay redraws independently).
const SALT_REPLAY: u64 = 0xDA6_2EA1;
/// Salt base for speculative-copy attempt draws.
const SALT_COPY: u64 = 0xDA6_C0B1;

/// Bytes a chained value puts on the wire per unit of task cost when a
/// dependency crosses nodes (one coefficient block's worth).
const BYTES_PER_COST: u64 = 4096;

/// One task of a chained-operator workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagTask {
    /// Which operator chain (SCF orbital, BSH source) the task belongs
    /// to; chains are pinned to node `chain % nodes`.
    pub chain: u32,
    /// Global step index (iteration × phases + phase) — only consulted
    /// by the barrier baseline, which synchronizes between steps.
    pub step: u32,
    /// Pipeline stage the task's span is journaled as.
    pub stage: Stage,
    /// Work units; the task busies its node for `per_task × cost`.
    pub cost: u64,
    /// Indices of earlier tasks whose values this task consumes.
    pub deps: Vec<usize>,
}

/// A chained-operator workload: tasks plus dependency edges, acyclic by
/// construction (a task may only depend on previously pushed tasks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagWorkload {
    tasks: Vec<DagTask>,
}

impl DagWorkload {
    /// An empty workload.
    pub fn new() -> Self {
        DagWorkload::default()
    }

    /// Appends a task and returns its index.
    ///
    /// Dependencies may sit in the same step as the task (push order
    /// already topologically orders them, and Dataflow mode only
    /// consults the edges); only a dependency in a *later* step is
    /// rejected. The stricter stratification the barrier baseline
    /// needs — every edge crossing strictly increasing steps — is
    /// checked by [`DagWorkload::is_barrier_stratified`] and enforced
    /// when a run actually requests [`DagMode::Barrier`].
    ///
    /// # Panics
    /// Panics if a dependency does not name an earlier task, or names
    /// a task in a later step.
    pub fn push(&mut self, task: DagTask) -> usize {
        let id = self.tasks.len();
        for &d in &task.deps {
            assert!(d < id, "dependency {d} does not name an earlier task");
            assert!(
                self.tasks[d].step <= task.step,
                "dependency {d} (step {}) is in a later step than {} (step {})",
                self.tasks[d].step,
                id,
                task.step
            );
        }
        self.tasks.push(task);
        id
    }

    /// Whether steps stratify the edges: every dependency sits in a
    /// strictly earlier step, so a global barrier between steps is a
    /// valid schedule. Same-step edges are fine for Dataflow mode but
    /// would deadlock a step-at-a-time barrier schedule that releases
    /// a whole step at once.
    pub fn is_barrier_stratified(&self) -> bool {
        self.tasks
            .iter()
            .all(|t| t.deps.iter().all(|&d| self.tasks[d].step < t.step))
    }

    /// The tasks, in push (topological) order.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workload has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total dependency edges.
    pub fn edges(&self) -> usize {
        self.tasks.iter().map(|t| t.deps.len()).sum()
    }

    /// Number of distinct chains.
    pub fn chains(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| t.chain as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// How the cluster executes the DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagMode {
    /// Completion-triggered: a task waits only for its own
    /// predecessors (futures semantics, no stage barrier).
    Dataflow,
    /// Bulk-synchronous baseline: a global barrier between steps.
    Barrier,
}

/// Seeded fault injection for DAG execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DagFaultSpec {
    /// Seed for the stateless per-attempt failure draws.
    pub seed: u64,
    /// Probability any single attempt fails.
    pub fail_rate: f64,
    /// Detection + re-submission delay charged per failed attempt.
    pub backoff: SimTime,
    /// Failed attempts tolerated before the task's node assignment is
    /// quarantined and the work moves to the next node.
    pub max_retries: u32,
}

impl DagFaultSpec {
    /// No faults.
    pub fn none() -> Self {
        DagFaultSpec {
            seed: 0,
            fail_rate: 0.0,
            backoff: SimTime::ZERO,
            max_retries: 2,
        }
    }
}

/// Whole-node lifecycle faults and recovery policy for
/// [`run_dag_survivable`].
#[derive(Clone, Debug)]
pub struct DagSurvivalSpec {
    /// When nodes crash, partition and rejoin.
    pub timeline: NodeTimeline,
    /// Checkpoint cadence: values completed at or before the last
    /// boundary `k × checkpoint_every` survive their node's crash.
    pub checkpoint_every: SimTime,
    /// Failure-detection delay: recovery (chain reassignment, value
    /// migration, replay release) starts this long after the crash.
    pub detect: SimTime,
    /// Launch a second copy of the critical-path chain tails on the
    /// least-loaded other node; first completion wins.
    pub speculate_tails: bool,
}

impl DagSurvivalSpec {
    /// The inert policy for `nodes` nodes: nothing crashes, nothing
    /// speculates — [`run_dag_survivable`] degenerates to [`run_dag`].
    pub fn none(nodes: usize) -> Self {
        DagSurvivalSpec {
            timeline: NodeTimeline::new(nodes),
            checkpoint_every: SimTime::from_millis(1),
            detect: SimTime::ZERO,
            speculate_tails: false,
        }
    }

    /// Whether this spec cannot perturb a run.
    pub fn is_inert(&self) -> bool {
        self.timeline.is_inert() && !self.speculate_tails
    }
}

/// Outcome of one DAG execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagRunReport {
    /// End-to-end simulated time.
    pub makespan: SimTime,
    /// Tasks executed.
    pub tasks: u64,
    /// Failed attempts injected by the fault plan.
    pub injected: u64,
    /// Re-submissions after a failed attempt (on the same node).
    pub retries: u64,
    /// Tasks whose node assignment was quarantined (moved off-node
    /// after exhausting retries).
    pub quarantines: u64,
    /// Final attempts that exhausted their retries with **nowhere to
    /// move** (single-node cluster, or every other node dead): the
    /// attempt reruns in place and is counted here, not as a
    /// quarantine.
    pub exhausted: u64,
    /// Simulated ns during which ≥ 2 distinct stages ran concurrently
    /// (the dataflow win; 0 for a barrier schedule by construction).
    pub overlap_ns: u64,
    /// Sum of all attempt spans (node busy time).
    pub busy_ns: u64,
    /// Longest dependency path (durations + cross-node hops), a lower
    /// bound on the makespan of any schedule.
    pub critical_path: SimTime,
    /// Per-node busy time.
    pub per_node_busy: Vec<SimTime>,
}

impl DagRunReport {
    /// Every attempt accounted: each injected failure was either
    /// retried in place, quarantined off-node, or exhausted with no
    /// neighbour to move to — and busy time fits inside
    /// `nodes × makespan`.
    pub fn conserved(&self, nodes: usize) -> bool {
        self.busy_ns <= self.makespan.as_nanos().saturating_mul(nodes as u64)
            && self.critical_path <= self.makespan
            && self.injected == self.retries + self.quarantines + self.exhausted
    }
}

/// Outcome of one survivable DAG execution: the base report plus the
/// crash/recovery/speculation ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurvivableDagReport {
    /// The ordinary scheduling report (tasks, faults, overlap,
    /// critical path).
    pub base: DagRunReport,
    /// Node crashes processed.
    pub crashes: u64,
    /// Attempt spans voided by a crash: in-flight attempts truncated
    /// at the crash instant plus completions folded back to the
    /// checkpoint cut.
    pub voided: u64,
    /// Tasks re-executed after a fold-back.
    pub replayed: u64,
    /// Checkpointed frontier values migrated off dead nodes.
    pub migrated_values: u64,
    /// Bytes those migrations moved through the interconnect.
    pub migrated_bytes: u64,
    /// Simulated ns spent in recovery (crash instant → last migration
    /// arrival), summed over crashes.
    pub recovery_ns: u64,
    /// Speculative copies launched for critical-path chain tails.
    pub speculative_copies: u64,
    /// Copies cancelled by a first completion (one per speculated
    /// task: either the copy or the primary loses).
    pub cancelled_copies: u64,
    /// Attempt spans journaled (truncated crash partials included,
    /// cancelled speculation losers excluded — the journal is the
    /// committed history).
    pub attempts_journaled: u64,
    /// The frontier snapshot taken at the most recent crash (default
    /// if nothing crashed): what a survivor would resume from.
    pub last_checkpoint: FrontierSnapshot,
}

impl SurvivableDagReport {
    /// The widened conservation law:
    ///
    /// ```text
    /// tasks + injected + voided + speculative_copies
    ///     == attempts_journaled + cancelled_copies
    /// ```
    ///
    /// on top of the base invariants ([`DagRunReport::conserved`]).
    pub fn conserved(&self, nodes: usize) -> bool {
        self.base.conserved(nodes)
            && self.base.tasks + self.base.injected + self.voided + self.speculative_copies
                == self.attempts_journaled + self.cancelled_copies
    }
}

/// One planned slice of an attempt sequence.
#[derive(Clone, Copy, Debug)]
enum Piece {
    /// Chain-state migration hop onto an off-home node
    /// ([`Stage::Migrate`] span; wire time, not node busy time).
    Wire,
    /// A failed attempt; `last` marks retry exhaustion.
    Fail { last: bool },
    /// The completing attempt.
    Done,
}

/// Failure draws for one `(task, incarnation)`: how many attempts fail
/// before one sticks, under the given salt.
fn failed_attempts(faults: &DagFaultSpec, task: usize, salt: u64) -> u32 {
    let mut failed = 0u32;
    while failed < faults.max_retries
        && draw(faults.seed, salt, ((task as u64) << 8) | failed as u64) < faults.fail_rate
    {
        failed += 1;
    }
    failed
}

fn salt_for(incarnation: u32) -> u64 {
    if incarnation == 0 {
        SALT_FAIL
    } else {
        SALT_REPLAY.wrapping_add(incarnation as u64)
    }
}

/// First alive node after `from` (cycling); `from` itself if no other
/// node is alive — the caller detects "nowhere to move" by equality.
fn next_alive(from: usize, nodes: usize, dead: &[bool]) -> usize {
    for k in 1..nodes {
        let cand = (from + k) % nodes;
        if !dead[cand] {
            return cand;
        }
    }
    from
}

/// Earliest instant `≥ from_ns` at which `a` and `b` are simultaneously
/// reachable, or `None` if that never happens again.
fn both_reachable_from(tl: &NodeTimeline, a: usize, b: usize, from_ns: u64) -> Option<u64> {
    let mut t = from_ns;
    loop {
        let ta = tl.reachable_from(a, t)?;
        let tb = tl.reachable_from(b, ta)?;
        if tb == ta {
            return Some(ta);
        }
        t = tb;
    }
}

/// Builds the planned sub-span sequence for one attempt run of `task`
/// on `node`: an optional state hop (when `node` differs from the
/// chain's resident home), `failed` failing attempts with backoff
/// gaps, then the completing attempt. Returns the pieces and the
/// sequence end.
fn build_sequence(
    task: &DagTask,
    start: SimTime,
    off_home: bool,
    failed: u32,
    faults: &DagFaultSpec,
    rate: NodeRate,
    net: &NetworkModel,
) -> (Vec<(Piece, SimTime, SimTime)>, SimTime) {
    let dur = rate.per_task * task.cost.max(1);
    let mut seq = Vec::with_capacity(failed as usize + 2);
    let mut at = start;
    if off_home {
        let hop = net.latency + net.transfer_time(1, task.cost * BYTES_PER_COST);
        seq.push((Piece::Wire, at, at + hop));
        at += hop;
    }
    for a in 0..failed {
        let end = at + dur;
        seq.push((
            Piece::Fail {
                last: a + 1 == faults.max_retries,
            },
            at,
            end,
        ));
        at = end + faults.backoff;
    }
    let end = at + dur;
    seq.push((Piece::Done, at, end));
    (seq, end)
}

/// Journals one attempt sequence, truncating at `cut` (the node's
/// crash instant) if the sequence crosses it. Updates the fault
/// counters (`moved` selects quarantine vs exhausted accounting for a
/// `Fail { last }` piece) and busy time. Returns `true` when the
/// sequence was truncated — the task did **not** complete.
#[allow(clippy::too_many_arguments)]
fn emit_sequence<R: Recorder>(
    rec: &mut R,
    spans: &mut Vec<Span>,
    report: &mut DagRunReport,
    attempts_journaled: &mut u64,
    voided: &mut u64,
    stage: Stage,
    node: usize,
    moved: bool,
    seq: &[(Piece, SimTime, SimTime)],
    cut: Option<SimTime>,
) -> bool {
    let mut truncated = false;
    for &(piece, s, e) in seq {
        if let Some(c) = cut {
            if s >= c {
                truncated = true;
                break;
            }
        }
        let (end, cutoff) = match cut {
            Some(c) if e > c => (c, true),
            _ => (e, false),
        };
        let wire = matches!(piece, Piece::Wire);
        let span_stage = if wire { Stage::Migrate } else { stage };
        if R::ENABLED {
            rec.span(span_stage, s.as_nanos(), end.as_nanos(), node as u32);
        }
        if !wire {
            spans.push(Span {
                stage,
                start_ns: s.as_nanos(),
                end_ns: end.as_nanos(),
                lane: node as u32,
            });
            *attempts_journaled += 1;
            report.busy_ns += (end.saturating_sub(s)).as_nanos();
            report.per_node_busy[node] += end.saturating_sub(s);
        }
        report.makespan = report.makespan.max(end);
        if cutoff {
            if !wire {
                // The attempt died with its node: journaled as a
                // partial span, balanced by the voided counter.
                *voided += 1;
            }
            truncated = true;
            break;
        }
        if let Piece::Fail { last } = piece {
            report.injected += 1;
            if R::ENABLED {
                rec.fault(FaultEvent {
                    kind: FaultKind::KernelLaunchFail,
                    action: FaultAction::Injected,
                    at_ns: end.as_nanos(),
                    tasks: 1,
                });
            }
            let (action, ctr) = if last {
                if moved {
                    (FaultAction::Quarantined, &mut report.quarantines)
                } else {
                    // Nowhere to move (1-node cluster or no alive
                    // neighbour): the rerun stays in place.
                    (FaultAction::Retried, &mut report.exhausted)
                }
            } else {
                (FaultAction::Retried, &mut report.retries)
            };
            *ctr += 1;
            if R::ENABLED {
                rec.fault(FaultEvent {
                    kind: FaultKind::KernelLaunchFail,
                    action,
                    at_ns: end.as_nanos(),
                    tasks: 1,
                });
            }
        }
    }
    truncated
}

/// Executes `workload` on `nodes` simulated nodes, journaling one span
/// per attempt (lane = node) plus fault events, and returns the run
/// report. Deterministic for a fixed `(workload, nodes, rate, net,
/// mode, faults)` tuple — replaying yields a bit-identical journal.
///
/// Equivalent to [`run_dag_survivable`] with an inert
/// [`DagSurvivalSpec`].
///
/// # Panics
/// Panics if `nodes == 0`, or in [`DagMode::Barrier`] if the workload
/// is not step-stratified ([`DagWorkload::is_barrier_stratified`]).
pub fn run_dag<R: Recorder>(
    workload: &DagWorkload,
    nodes: usize,
    rate: NodeRate,
    net: &NetworkModel,
    mode: DagMode,
    faults: &DagFaultSpec,
    rec: &mut R,
) -> DagRunReport {
    run_dag_survivable(
        workload,
        nodes,
        rate,
        net,
        mode,
        faults,
        &DagSurvivalSpec::none(nodes),
        rec,
    )
    .base
}

/// The survivable DAG engine: [`run_dag`] semantics plus whole-node
/// crash/partition/rejoin handling, frontier-checkpoint lineage replay
/// and optional tail speculation (see the module docs for the model).
///
/// # Panics
/// Panics if `nodes == 0`, if the survival timeline tracks a different
/// node count, if a non-inert spec is combined with
/// [`DagMode::Barrier`] (survivable execution is Dataflow-only), in
/// Barrier mode if the workload is not step-stratified, or if every
/// node crashes with work still pending.
#[allow(clippy::too_many_arguments)]
pub fn run_dag_survivable<R: Recorder>(
    workload: &DagWorkload,
    nodes: usize,
    rate: NodeRate,
    net: &NetworkModel,
    mode: DagMode,
    faults: &DagFaultSpec,
    survival: &DagSurvivalSpec,
    rec: &mut R,
) -> SurvivableDagReport {
    assert!(nodes > 0, "cluster must have nodes");
    assert_eq!(
        survival.timeline.nodes(),
        nodes,
        "survival timeline must track the cluster's node count"
    );
    assert!(
        mode == DagMode::Dataflow || survival.is_inert(),
        "survivable execution is Dataflow-only: the barrier baseline \
         has no frontier to fold back to"
    );
    if mode == DagMode::Barrier {
        assert!(
            workload.is_barrier_stratified(),
            "Barrier mode needs steps to stratify the edges: some \
             dependency shares its consumer's step (fine for Dataflow)"
        );
    }
    let n = workload.tasks.len();
    let mut report = SurvivableDagReport {
        base: DagRunReport {
            makespan: SimTime::ZERO,
            tasks: n as u64,
            injected: 0,
            retries: 0,
            quarantines: 0,
            exhausted: 0,
            overlap_ns: 0,
            busy_ns: 0,
            critical_path: SimTime::ZERO,
            per_node_busy: vec![SimTime::ZERO; nodes],
        },
        crashes: 0,
        voided: 0,
        replayed: 0,
        migrated_values: 0,
        migrated_bytes: 0,
        recovery_ns: 0,
        speculative_copies: 0,
        cancelled_copies: 0,
        attempts_journaled: 0,
        last_checkpoint: FrontierSnapshot::default(),
    };
    if n == 0 {
        return report;
    }

    let tl = &survival.timeline;
    let n_chains = workload.chains();
    let mut icn = Interconnect::new(net.clone());
    let mut frontier = Frontier::from_deps(workload.tasks.iter().map(|t| t.deps.clone()).collect());

    // Static critical-path tails (cost units): the speculation targets.
    let mut target = vec![false; n];
    if survival.speculate_tails && nodes > 1 {
        let mut lp = vec![0u64; n];
        let mut has_succ = vec![false; n];
        for (i, t) in workload.tasks.iter().enumerate() {
            let mut base = 0;
            for &d in &t.deps {
                base = base.max(lp[d]);
                has_succ[d] = true;
            }
            lp[i] = base + t.cost.max(1);
        }
        let lmax = (0..n)
            .filter(|&i| !has_succ[i])
            .map(|i| lp[i])
            .max()
            .unwrap_or(0);
        for i in 0..n {
            target[i] = !has_succ[i] && lp[i] == lmax && lmax > 0;
        }
    }

    // Lifecycle events, time-ordered (rejoins before crashes on ties,
    // so a simultaneous rejoin can absorb the crashed node's chains).
    let mut events: Vec<(u64, u8, usize)> = Vec::new();
    for node in 0..nodes {
        if let Some(r) = tl.rejoin_at(node) {
            events.push((r, 0, node));
        }
        if let Some(c) = tl.crash_at(node) {
            events.push((c, 1, node));
        }
    }
    events.sort_unstable();
    let mut ev_idx = 0;

    let mut chain_home: Vec<usize> = (0..n_chains).map(|c| c % nodes).collect();
    let mut chain_ready: Vec<SimTime> = vec![SimTime::ZERO; n_chains];
    let mut dead = vec![false; nodes];
    let mut finish: Vec<Option<SimTime>> = vec![None; n];
    let mut value_node: Vec<Option<usize>> = vec![None; n];
    let mut avail: Vec<SimTime> = vec![SimTime::ZERO; n];
    let mut incarnation: Vec<u32> = vec![0; n];
    let mut node_free: Vec<SimTime> = vec![rate.startup; nodes];
    let mut barrier_time = SimTime::ZERO; // only advanced in Barrier mode
    let mut current_step = workload.tasks[0].step;
    let mut spans: Vec<Span> = Vec::with_capacity(n);
    let mut cp: Vec<SimTime> = vec![SimTime::ZERO; n];
    let mut scheduled = vec![false; n];
    let mut remaining = n;

    // Greedy earliest-start list scheduling: repeatedly run the ready
    // task that can start soonest (ties broken by index, so the
    // schedule is deterministic). Candidate starts are monotone
    // non-decreasing, which is what lets lifecycle events interleave
    // at the right instants. O(n²) per pass, fine at scenario scale.
    while remaining > 0 {
        // (start, task, node, failed draws, moved-off-home)
        let mut best: Option<(SimTime, usize, usize, u32, bool)> = None;
        for (i, t) in workload.tasks.iter().enumerate() {
            if scheduled[i] {
                continue;
            }
            if mode == DagMode::Barrier && t.step != current_step {
                continue;
            }
            let chain = t.chain as usize;
            let assigned = chain_home[chain];
            if dead[assigned] {
                continue; // reassigned when the crash event fires
            }
            let failed = failed_attempts(faults, i, salt_for(incarnation[i]));
            let (node, moved) = if failed == faults.max_retries {
                let q = next_alive(assigned, nodes, &dead);
                (q, q != assigned)
            } else {
                (assigned, false)
            };
            let mut ready = SimTime::ZERO;
            let mut ok = true;
            for &d in &t.deps {
                let Some(vn) = value_node[d] else {
                    ok = false;
                    break;
                };
                if vn == node {
                    ready = ready.max(avail[d]);
                    continue;
                }
                if dead[vn] {
                    ok = false; // migrates at crash processing
                    break;
                }
                match both_reachable_from(tl, vn, node, avail[d].as_nanos()) {
                    Some(ts) => {
                        let hop = net.latency
                            + net.transfer_time(1, workload.tasks[d].cost * BYTES_PER_COST);
                        ready = ready.max(SimTime::from_nanos(ts) + hop);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let start = ready
                .max(node_free[node])
                .max(barrier_time)
                .max(chain_ready[chain]);
            match best {
                Some((s, ..)) if s <= start => {}
                _ => best = Some((start, i, node, failed, moved)),
            }
        }

        // Fire the next lifecycle event if nothing can start before it.
        if ev_idx < events.len() {
            let (et, kind, en) = events[ev_idx];
            let fire = match best {
                None => true,
                Some((s, ..)) => s.as_nanos() >= et,
            };
            if fire {
                ev_idx += 1;
                if kind == 0 {
                    // Rejoin: the node comes back cold.
                    dead[en] = false;
                    node_free[en] = node_free[en].max(SimTime::from_nanos(et) + rate.startup);
                    if R::ENABLED {
                        rec.fault(FaultEvent {
                            kind: FaultKind::NodeRejoin,
                            action: FaultAction::Readmitted,
                            at_ns: et,
                            tasks: 0,
                        });
                    }
                    continue;
                }
                // Crash: fold to the checkpoint cut, reassign the dead
                // node's chains, migrate surviving frontier values.
                dead[en] = true;
                report.crashes += 1;
                let every = survival.checkpoint_every.as_nanos().max(1);
                let cut_ns = (et / every) * every;
                let lost: Vec<usize> = (0..n)
                    .filter(|&j| {
                        value_node[j] == Some(en)
                            && finish[j].is_some_and(|f| f.as_nanos() > cut_ns)
                    })
                    .collect();
                let lost_ids: Vec<TaskId> = lost.iter().map(|&j| TaskId::from_index(j)).collect();
                frontier.fold_back(&lost_ids);
                for &j in &lost {
                    finish[j] = None;
                    value_node[j] = None;
                    avail[j] = SimTime::ZERO;
                    scheduled[j] = false;
                    incarnation[j] += 1;
                }
                report.voided += lost.len() as u64;
                report.replayed += lost.len() as u64;
                remaining += lost.len();
                if R::ENABLED {
                    rec.fault(FaultEvent {
                        kind: FaultKind::NodeCrash,
                        action: FaultAction::Injected,
                        at_ns: et,
                        tasks: lost.len() as u64,
                    });
                }
                let snap = frontier.snapshot();
                let alive: Vec<usize> = (0..nodes).filter(|&x| !dead[x]).collect();
                assert!(
                    !alive.is_empty(),
                    "all nodes crashed with work pending: the workload cannot complete"
                );
                let release = SimTime::from_nanos(et) + survival.detect;
                // Reassign the dead node's chains over the survivors:
                // LPT by pending work against each survivor's backlog.
                let lost_chains: Vec<usize> =
                    (0..n_chains).filter(|&c| chain_home[c] == en).collect();
                if !lost_chains.is_empty() {
                    let weights: Vec<u64> = lost_chains
                        .iter()
                        .map(|&c| {
                            workload
                                .tasks
                                .iter()
                                .enumerate()
                                .filter(|(j, t)| t.chain as usize == c && !scheduled[*j])
                                .map(|(_, t)| t.cost.max(1))
                                .sum::<u64>()
                                .max(1)
                        })
                        .collect();
                    let base_secs: Vec<f64> = alive
                        .iter()
                        .map(|&x| node_free[x].max(release).as_secs_f64())
                        .collect();
                    let per_unit: Vec<f64> = vec![rate.per_task.as_secs_f64(); alive.len()];
                    let asg = lpt_assign(&weights, &base_secs, &per_unit);
                    for (k, &c) in lost_chains.iter().enumerate() {
                        chain_home[c] = alive[asg[k]];
                    }
                }
                // Replay and reassigned work waits out detection.
                for &j in &lost {
                    let c = workload.tasks[j].chain as usize;
                    chain_ready[c] = chain_ready[c].max(release);
                }
                for &c in &lost_chains {
                    chain_ready[c] = chain_ready[c].max(release);
                }
                // Migrate checkpointed frontier values off dead nodes
                // (durable in the cut, readable by survivors) to their
                // chain's new home, through the contended fabric.
                let mut rec_end = release;
                for id in &snap.frontier {
                    let j = id.index();
                    let Some(vn) = value_node[j] else { continue };
                    if !dead[vn] {
                        continue;
                    }
                    let dest = chain_home[workload.tasks[j].chain as usize];
                    let bytes = workload.tasks[j].cost * BYTES_PER_COST;
                    let (_link, ms, arrive) = icn.migrate(release, 1, bytes);
                    if R::ENABLED {
                        rec.span(
                            Stage::Recover,
                            ms.as_nanos(),
                            arrive.as_nanos(),
                            dest as u32,
                        );
                    }
                    value_node[j] = Some(dest);
                    avail[j] = arrive;
                    report.migrated_values += 1;
                    report.migrated_bytes += bytes;
                    rec_end = rec_end.max(arrive);
                    report.base.makespan = report.base.makespan.max(arrive);
                }
                report.recovery_ns += rec_end.saturating_sub(SimTime::from_nanos(et)).as_nanos();
                if R::ENABLED {
                    rec.fault(FaultEvent {
                        kind: FaultKind::NodeCrash,
                        action: FaultAction::Recovered,
                        at_ns: rec_end.as_nanos(),
                        tasks: lost.len() as u64,
                    });
                }
                report.last_checkpoint = snap;
                continue;
            }
        }

        let (start, i, node, failed, moved) =
            best.expect("ready task must exist: DAG is acyclic and some node survives");
        let t = &workload.tasks[i];
        let chain = t.chain as usize;
        let (seq, seq_end) = build_sequence(t, start, moved, failed, faults, rate, net);
        let cut = tl
            .crash_at(node)
            .map(SimTime::from_nanos)
            .filter(|&c| start < c && c < seq_end);

        // Tail speculation: race a copy on the least-loaded other node.
        let mut committed = false;
        if target[i] && cut.is_none() {
            let copy_node = (0..nodes)
                .filter(|&x| !dead[x] && x != node)
                .min_by_key(|&x| (node_free[x], x));
            if let Some(cn) = copy_node {
                let mut cready = SimTime::ZERO;
                let mut ok = true;
                for &d in &t.deps {
                    let vn = value_node[d].expect("deps complete");
                    if vn == cn {
                        cready = cready.max(avail[d]);
                        continue;
                    }
                    match both_reachable_from(tl, vn, cn, avail[d].as_nanos()) {
                        Some(ts) => {
                            let hop = net.latency
                                + net.transfer_time(1, workload.tasks[d].cost * BYTES_PER_COST);
                            cready = cready.max(SimTime::from_nanos(ts) + hop);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let c_launch = cready.max(node_free[cn]).max(chain_ready[chain]);
                    let c_failed =
                        failed_attempts(faults, i, SALT_COPY.wrapping_add(incarnation[i] as u64));
                    let (c_seq, c_end) =
                        build_sequence(t, c_launch, true, c_failed, faults, rate, net);
                    let copy_cut_free = tl
                        .crash_at(cn)
                        .map(SimTime::from_nanos)
                        .filter(|&c| c_launch < c && c < c_end)
                        .is_none();
                    if copy_cut_free {
                        // The copy launch is journaled whatever the
                        // outcome; only the winner's spans commit.
                        if R::ENABLED {
                            rec.fault(FaultEvent {
                                kind: FaultKind::SlowNode,
                                action: FaultAction::Hedged,
                                at_ns: c_launch.as_nanos(),
                                tasks: 1,
                            });
                        }
                        report.speculative_copies += 1;
                        report.cancelled_copies += 1;
                        let copy_wins = c_end < seq_end; // tie → primary
                        let (w_seq, w_end, w_node, w_moved, w_launch) = if copy_wins {
                            (&c_seq, c_end, cn, false, c_launch)
                        } else {
                            (&seq, seq_end, node, moved, start)
                        };
                        let (l_seq, l_end, l_node) = if copy_wins {
                            (&seq, seq_end, node)
                        } else {
                            (&c_seq, c_end, cn)
                        };
                        let truncated = emit_sequence(
                            rec,
                            &mut spans,
                            &mut report.base,
                            &mut report.attempts_journaled,
                            &mut report.voided,
                            t.stage,
                            w_node,
                            w_moved,
                            w_seq,
                            None,
                        );
                        debug_assert!(!truncated);
                        // The loser ran until the winner finished:
                        // that occupancy is busy time but never
                        // journal history.
                        let mut l_free = node_free[l_node];
                        for &(piece, s, e) in l_seq {
                            if matches!(piece, Piece::Wire) {
                                continue;
                            }
                            let e2 = e.min(w_end);
                            if s < e2 {
                                report.base.busy_ns += (e2 - s).as_nanos();
                                report.base.per_node_busy[l_node] += e2 - s;
                                l_free = l_free.max(e2);
                            }
                        }
                        node_free[l_node] = l_free.max(l_end.min(w_end));
                        node_free[w_node] = w_end;
                        finish[i] = Some(w_end);
                        value_node[i] = Some(w_node);
                        avail[i] = w_end;
                        scheduled[i] = true;
                        frontier.mark_complete(TaskId::from_index(i));
                        remaining -= 1;
                        report.base.makespan = report.base.makespan.max(w_end);
                        let mut base = SimTime::ZERO;
                        for &d in &t.deps {
                            let hop = if value_node[d] == Some(w_node) {
                                SimTime::ZERO
                            } else {
                                net.latency
                                    + net.transfer_time(1, workload.tasks[d].cost * BYTES_PER_COST)
                            };
                            base = base.max(cp[d] + hop);
                        }
                        cp[i] = base + (w_end.saturating_sub(w_launch));
                        report.base.critical_path = report.base.critical_path.max(cp[i]);
                        committed = true;
                    }
                }
            }
        }

        if !committed {
            let truncated = emit_sequence(
                rec,
                &mut spans,
                &mut report.base,
                &mut report.attempts_journaled,
                &mut report.voided,
                t.stage,
                node,
                moved,
                &seq,
                cut,
            );
            if truncated {
                // The node died mid-sequence: the task replays after
                // the crash event fires and reassigns its chain.
                let c = cut.expect("truncation implies a crash cut");
                node_free[node] = node_free[node].max(c);
                incarnation[i] += 1;
                continue;
            }
            report.base.makespan = report.base.makespan.max(seq_end);
            finish[i] = Some(seq_end);
            value_node[i] = Some(node);
            avail[i] = seq_end;
            node_free[node] = seq_end;
            scheduled[i] = true;
            frontier.mark_complete(TaskId::from_index(i));
            remaining -= 1;

            // Critical path: predecessors' paths + this task's total
            // time (failed attempts, backoffs and state hops included —
            // faults lengthen the chain no schedule can beat).
            let mut base = SimTime::ZERO;
            for &d in &t.deps {
                let hop = if value_node[d] == Some(node) {
                    SimTime::ZERO
                } else {
                    net.latency + net.transfer_time(1, workload.tasks[d].cost * BYTES_PER_COST)
                };
                base = base.max(cp[d] + hop);
            }
            cp[i] = base + (seq_end.saturating_sub(start));
            report.base.critical_path = report.base.critical_path.max(cp[i]);
        }

        // Barrier mode: advance the step once its last task finished.
        if mode == DagMode::Barrier {
            let step_done = workload
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.step == current_step)
                .all(|(j, _)| scheduled[j]);
            if step_done {
                barrier_time = workload
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.step == current_step)
                    .map(|(j, _)| finish[j].expect("scheduled"))
                    .fold(barrier_time, SimTime::max);
                current_step = workload
                    .tasks
                    .iter()
                    .filter(|t| t.step > current_step)
                    .map(|t| t.step)
                    .min()
                    .unwrap_or(current_step);
            }
        }
    }

    report.base.overlap_ns = stage_overlap_ns(spans.iter());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use madness_faults::NodeFault;
    use madness_trace::MemRecorder;

    fn rate() -> NodeRate {
        NodeRate {
            startup: SimTime::from_micros(5),
            per_task: SimTime::from_micros(2),
        }
    }

    /// `chains` chained Apply→Update iterations with per-chain cost
    /// skew, the shape of the SCF scenario.
    fn chained(chains: u32, iters: u32) -> DagWorkload {
        let mut w = DagWorkload::new();
        let mut prev: Vec<Option<usize>> = vec![None; chains as usize];
        for it in 0..iters {
            for c in 0..chains {
                let deps: Vec<usize> = prev[c as usize].into_iter().collect();
                let apply = w.push(DagTask {
                    chain: c,
                    step: it * 2,
                    stage: Stage::CpuCompute,
                    cost: 40 + 25 * c as u64,
                    deps,
                });
                let upd = w.push(DagTask {
                    chain: c,
                    step: it * 2 + 1,
                    stage: Stage::Postprocess,
                    cost: 8 + 3 * c as u64,
                    deps: vec![apply],
                });
                prev[c as usize] = Some(upd);
            }
        }
        w
    }

    fn crash_spec(nodes: usize, node: usize, at_us: u64) -> DagSurvivalSpec {
        let mut tl = NodeTimeline::new(nodes);
        tl.add(node, NodeFault::CrashAt(at_us * 1_000));
        DagSurvivalSpec {
            timeline: tl,
            checkpoint_every: SimTime::from_micros(50),
            detect: SimTime::from_micros(20),
            speculate_tails: false,
        }
    }

    #[test]
    fn dataflow_overlaps_barrier_does_not() {
        let w = chained(4, 3);
        let net = NetworkModel::default();
        let mut rec = MemRecorder::new();
        let df = run_dag(
            &w,
            4,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut rec,
        );
        let ba = run_dag(
            &w,
            4,
            rate(),
            &net,
            DagMode::Barrier,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert!(df.overlap_ns > 0, "dataflow must overlap stages: {df:?}");
        assert_eq!(ba.overlap_ns, 0, "barrier must not overlap: {ba:?}");
        assert!(df.makespan <= ba.makespan, "{df:?} vs {ba:?}");
        assert!(df.conserved(4) && ba.conserved(4));
        assert_eq!(rec.spans().count() as u64, df.tasks + df.injected);
    }

    #[test]
    fn replay_is_bit_identical_including_faults() {
        let w = chained(3, 4);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 0xFA17,
            fail_rate: 0.2,
            backoff: SimTime::from_micros(30),
            max_retries: 2,
        };
        let mut rec_a = MemRecorder::new();
        let mut rec_b = MemRecorder::new();
        let a = run_dag(&w, 3, rate(), &net, DagMode::Dataflow, &faults, &mut rec_a);
        let b = run_dag(&w, 3, rate(), &net, DagMode::Dataflow, &faults, &mut rec_b);
        assert_eq!(a, b);
        assert_eq!(rec_a.to_json(), rec_b.to_json());
        assert!(a.injected > 0, "fail_rate 0.2 over 24 tasks must inject");
    }

    #[test]
    fn faults_retry_and_quarantine_without_deadlock() {
        let w = chained(2, 3);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 7,
            fail_rate: 0.7, // hot enough to exhaust retries somewhere
            backoff: SimTime::from_micros(10),
            max_retries: 2,
        };
        let mut rec = MemRecorder::new();
        let clean = run_dag(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        let faulty = run_dag(&w, 2, rate(), &net, DagMode::Dataflow, &faults, &mut rec);
        assert!(faulty.injected > 0);
        assert!(faulty.quarantines > 0, "0.7³ per task must quarantine");
        assert_eq!(
            faulty.injected,
            faulty.retries + faulty.quarantines + faulty.exhausted
        );
        assert_eq!(faulty.exhausted, 0, "2 alive nodes: every move succeeds");
        assert!(faulty.makespan > clean.makespan);
        assert!(faulty.conserved(2));
        // Journal carries the fault story: one Injected per failure.
        let injected = rec
            .faults()
            .filter(|f| f.action == FaultAction::Injected)
            .count() as u64;
        assert_eq!(injected, faulty.injected);
        // The quarantined attempts moved off-home, so each paid a
        // chain-state migration hop, journaled as a Migrate span.
        let migrate_spans = rec.spans().filter(|s| s.stage == Stage::Migrate).count() as u64;
        assert_eq!(migrate_spans, faulty.quarantines);
    }

    #[test]
    fn fault_free_plan_is_identity() {
        let w = chained(3, 2);
        let net = NetworkModel::default();
        let mut rec = MemRecorder::new();
        let base = run_dag(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut rec,
        );
        let zero = run_dag(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec {
                seed: 99,
                fail_rate: 0.0,
                backoff: SimTime::from_micros(50),
                max_retries: 2,
            },
            &mut madness_trace::NullRecorder,
        );
        assert_eq!(base, zero);
        assert_eq!(base.injected, 0);
        // No quarantine ⇒ no off-home attempt ⇒ the state-migration
        // charge cannot perturb a fault-free run.
        assert_eq!(rec.spans().filter(|s| s.stage == Stage::Migrate).count(), 0);
    }

    #[test]
    fn single_node_exhaustion_is_not_a_quarantine() {
        let w = chained(2, 3);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 7,
            fail_rate: 0.7,
            backoff: SimTime::from_micros(10),
            max_retries: 2,
        };
        let mut rec = MemRecorder::new();
        let r = run_dag(&w, 1, rate(), &net, DagMode::Dataflow, &faults, &mut rec);
        assert!(r.injected > 0);
        assert!(
            r.exhausted > 0,
            "retries must exhaust somewhere at this rate: {r:?}"
        );
        assert_eq!(
            r.quarantines, 0,
            "a 1-node cluster has nowhere to move work: {r:?}"
        );
        assert!(r.conserved(1));
        // In place means no state migration hop either.
        assert_eq!(rec.spans().filter(|s| s.stage == Stage::Migrate).count(), 0);
    }

    #[test]
    fn cross_node_dependencies_pay_a_network_hop() {
        // Chain 1's combine step consumes chain 0's value: on 2 nodes
        // that edge crosses the interconnect and must cost more than
        // the same DAG on 1 node (where every edge is local) minus the
        // serialization effect — check the hop via the critical path.
        let mut w = DagWorkload::new();
        let a = w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 10,
            deps: vec![],
        });
        let b = w.push(DagTask {
            chain: 1,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 10,
            deps: vec![],
        });
        let _join = w.push(DagTask {
            chain: 1,
            step: 1,
            stage: Stage::Postprocess,
            cost: 5,
            deps: vec![a, b],
        });
        let net = NetworkModel::default();
        let local = run_dag(
            &w,
            1,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        let remote = run_dag(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert!(remote.critical_path > local.critical_path);
    }

    #[test]
    #[should_panic(expected = "does not name an earlier task")]
    fn forward_dependency_rejected() {
        let mut w = DagWorkload::new();
        w.push(DagTask {
            chain: 0,
            step: 1,
            stage: Stage::CpuCompute,
            cost: 1,
            deps: vec![3],
        });
    }

    fn same_step_pair() -> DagWorkload {
        let mut w = DagWorkload::new();
        let a = w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 1,
            deps: vec![],
        });
        w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::Postprocess,
            cost: 1,
            deps: vec![a],
        });
        w
    }

    #[test]
    fn same_step_dependency_accepted_and_runs_in_dataflow() {
        // Push order already topologically orders same-step edges;
        // only Dataflow consults the edges, so this must execute.
        let w = same_step_pair();
        assert!(!w.is_barrier_stratified());
        let r = run_dag(
            &w,
            2,
            rate(),
            &NetworkModel::default(),
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert_eq!(r.tasks, 2);
        assert!(r.conserved(2));
    }

    #[test]
    #[should_panic(expected = "is in a later step")]
    fn later_step_dependency_rejected() {
        let mut w = DagWorkload::new();
        let a = w.push(DagTask {
            chain: 0,
            step: 2,
            stage: Stage::CpuCompute,
            cost: 1,
            deps: vec![],
        });
        w.push(DagTask {
            chain: 0,
            step: 1,
            stage: Stage::Postprocess,
            cost: 1,
            deps: vec![a],
        });
    }

    #[test]
    #[should_panic(expected = "Barrier mode needs steps to stratify")]
    fn barrier_rejects_unstratified_workload() {
        let w = same_step_pair();
        run_dag(
            &w,
            2,
            rate(),
            &NetworkModel::default(),
            DagMode::Barrier,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
    }

    #[test]
    fn empty_workload_is_trivial() {
        let r = run_dag(
            &DagWorkload::new(),
            2,
            rate(),
            &NetworkModel::default(),
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert_eq!(r.tasks, 0);
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn inert_survival_is_the_identity() {
        let w = chained(3, 3);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 0xFA17,
            fail_rate: 0.15,
            backoff: SimTime::from_micros(25),
            max_retries: 2,
        };
        let mut rec_a = MemRecorder::new();
        let mut rec_b = MemRecorder::new();
        let plain = run_dag(&w, 3, rate(), &net, DagMode::Dataflow, &faults, &mut rec_a);
        let surv = run_dag_survivable(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &faults,
            &DagSurvivalSpec::none(3),
            &mut rec_b,
        );
        assert_eq!(plain, surv.base);
        assert_eq!(rec_a.to_json(), rec_b.to_json());
        assert_eq!(surv.crashes, 0);
        assert_eq!(surv.voided, 0);
        assert_eq!(surv.speculative_copies, 0);
        assert_eq!(
            surv.attempts_journaled,
            surv.base.tasks + surv.base.injected
        );
        assert!(surv.conserved(3));
    }

    #[test]
    fn crash_mid_schedule_completes_on_survivors() {
        let w = chained(4, 4);
        let net = NetworkModel::default();
        let mut rec = MemRecorder::new();
        let clean = run_dag(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        let r = run_dag_survivable(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &crash_spec(3, 1, 160),
            &mut rec,
        );
        assert_eq!(r.crashes, 1);
        assert!(r.replayed > 0, "node 1 completed work after the cut: {r:?}");
        assert!(r.conserved(3), "{r:?}");
        assert!(
            r.base.makespan >= clean.makespan,
            "losing a node cannot speed the run up: {r:?} vs {clean:?}"
        );
        assert!(
            r.migrated_values > 0,
            "a 50µs cadence leaves durable frontier values to migrate: {r:?}"
        );
        assert!(
            rec.spans().any(|s| s.stage == Stage::Recover),
            "value migration must journal Recover spans"
        );
        assert!(rec
            .faults()
            .any(|f| f.kind == FaultKind::NodeCrash && f.action == FaultAction::Recovered));
        // Nothing lands on the dead node after the crash instant.
        let crash_ns = 160_000;
        assert!(rec
            .spans()
            .filter(|s| s.lane == 1 && s.stage != Stage::Recover)
            .all(|s| s.start_ns < crash_ns));
        assert!(
            r.last_checkpoint.completed < w.len(),
            "the cut is mid-schedule: {:?}",
            r.last_checkpoint
        );
        assert!(!r.last_checkpoint.frontier.is_empty());
    }

    #[test]
    fn faulted_survivable_replay_is_bit_identical() {
        let w = chained(4, 4);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 0xC4A5,
            fail_rate: 0.15,
            backoff: SimTime::from_micros(20),
            max_retries: 2,
        };
        let spec = crash_spec(3, 0, 250);
        let mut rec_a = MemRecorder::new();
        let mut rec_b = MemRecorder::new();
        let a = run_dag_survivable(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &faults,
            &spec,
            &mut rec_a,
        );
        let b = run_dag_survivable(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &faults,
            &spec,
            &mut rec_b,
        );
        assert_eq!(a, b);
        assert_eq!(rec_a.to_json(), rec_b.to_json());
        assert!(a.crashes == 1 && a.conserved(3), "{a:?}");
    }

    #[test]
    fn rejoined_node_comes_back_cold_and_helps() {
        let w = chained(4, 5);
        let net = NetworkModel::default();
        let mut tl = NodeTimeline::new(2);
        tl.add(1, NodeFault::CrashAt(200_000));
        tl.add(1, NodeFault::RejoinAt(400_000));
        let spec = DagSurvivalSpec {
            timeline: tl,
            checkpoint_every: SimTime::from_micros(50),
            detect: SimTime::from_micros(20),
            speculate_tails: false,
        };
        let mut rec = MemRecorder::new();
        let faults = DagFaultSpec {
            seed: 3,
            fail_rate: 0.6, // hot: quarantines look for an alive neighbour
            backoff: SimTime::from_micros(10),
            max_retries: 2,
        };
        let r = run_dag_survivable(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &faults,
            &spec,
            &mut rec,
        );
        assert_eq!(r.crashes, 1);
        assert!(r.conserved(2), "{r:?}");
        assert!(rec
            .faults()
            .any(|f| f.kind == FaultKind::NodeRejoin && f.action == FaultAction::Readmitted));
        // While node 1 was down, exhausted retries had nowhere to go.
        assert_eq!(
            r.base.injected,
            r.base.retries + r.base.quarantines + r.base.exhausted
        );
    }

    #[test]
    fn partition_delays_cross_node_values() {
        let mut w = DagWorkload::new();
        let a = w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 10,
            deps: vec![],
        });
        w.push(DagTask {
            chain: 1,
            step: 1,
            stage: Stage::Postprocess,
            cost: 5,
            deps: vec![a],
        });
        let net = NetworkModel::default();
        let clean = run_dag(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        // Partition node 0 across the instant its value would ship.
        let mut tl = NodeTimeline::new(2);
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 0,
                duration_ns: 500_000,
            },
        );
        let spec = DagSurvivalSpec {
            timeline: tl,
            ..DagSurvivalSpec::none(2)
        };
        let r = run_dag_survivable(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &spec,
            &mut madness_trace::NullRecorder,
        );
        assert!(
            r.base.makespan > clean.makespan,
            "the cross-node edge must wait out the partition: {:?} vs {:?}",
            r.base.makespan,
            clean.makespan
        );
        assert!(r.base.makespan >= SimTime::from_nanos(500_000));
        assert!(r.conserved(2));
    }

    #[test]
    fn speculation_races_the_critical_tail() {
        // One long chain dominates; a fault plan that hammers its tail
        // lets the clean copy on the other node win the race.
        let w = chained(2, 4);
        let net = NetworkModel::default();
        let spec = DagSurvivalSpec {
            speculate_tails: true,
            ..DagSurvivalSpec::none(2)
        };
        let mut seeds_where_speculation_wins = 0;
        for seed in 0..60u64 {
            let faults = DagFaultSpec {
                seed,
                fail_rate: 0.35,
                backoff: SimTime::from_micros(400),
                max_retries: 2,
            };
            let plain = run_dag(
                &w,
                2,
                rate(),
                &net,
                DagMode::Dataflow,
                &faults,
                &mut madness_trace::NullRecorder,
            );
            let mut rec = MemRecorder::new();
            let spec_run = run_dag_survivable(
                &w,
                2,
                rate(),
                &net,
                DagMode::Dataflow,
                &faults,
                &spec,
                &mut rec,
            );
            assert!(spec_run.conserved(2), "{spec_run:?}");
            assert_eq!(
                spec_run.speculative_copies, spec_run.cancelled_copies,
                "exactly one of each pair is cancelled: {spec_run:?}"
            );
            if spec_run.speculative_copies > 0 {
                assert!(
                    rec.faults().any(|f| f.action == FaultAction::Hedged),
                    "copy launches must be journaled"
                );
            }
            if spec_run.base.makespan < plain.makespan {
                seeds_where_speculation_wins += 1;
            }
        }
        assert!(
            seeds_where_speculation_wins > 0,
            "some seed must fail the primary tail hard enough for the copy to win"
        );
    }

    #[test]
    fn widened_conservation_holds_under_crash_and_speculation() {
        let w = chained(3, 4);
        let net = NetworkModel::default();
        let mut spec = crash_spec(3, 2, 280);
        spec.speculate_tails = true;
        let faults = DagFaultSpec {
            seed: 0xBEEF,
            fail_rate: 0.25,
            backoff: SimTime::from_micros(30),
            max_retries: 2,
        };
        let mut rec = MemRecorder::new();
        let r = run_dag_survivable(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &faults,
            &spec,
            &mut rec,
        );
        assert!(r.conserved(3), "{r:?}");
        assert_eq!(
            r.base.tasks + r.base.injected + r.voided + r.speculative_copies,
            r.attempts_journaled + r.cancelled_copies,
            "{r:?}"
        );
        // Journaled attempt spans really do match the ledger (Migrate
        // and Recover wire spans are not attempts).
        let journal_attempts = rec
            .spans()
            .filter(|s| s.stage != Stage::Migrate && s.stage != Stage::Recover)
            .count() as u64;
        assert_eq!(journal_attempts, r.attempts_journaled);
    }
}
