//! DAG-aware node execution: chained-operator workloads on the cluster.
//!
//! The batching pipeline of [`crate::node`] schedules one *flat* bag of
//! Apply tasks. Real MADNESS applications chain operators — an SCF
//! iteration applies the BSH Green's function, mixes, checks
//! convergence, and applies again — through a futures DAG with **no
//! global barrier between stages** (Harrison et al., arXiv:1507.01888).
//! This module executes such a [`DagWorkload`] on `N` simulated nodes
//! two ways:
//!
//! * [`DagMode::Dataflow`] — a task starts as soon as its predecessors
//!   have finished (plus a network hop when a value crosses nodes) and
//!   its chain's node is free; stages of different chains overlap
//!   freely, which is exactly the inter-stage overlap the trace
//!   sweep-line ([`madness_trace::stage_overlap_ns`]) measures;
//! * [`DagMode::Barrier`] — the bulk-synchronous baseline: tasks of
//!   global step `s` may not start until *every* task of step `s-1`
//!   has finished anywhere in the cluster. One stage runs at a time,
//!   so the overlap metric is zero by construction.
//!
//! Everything is simulated time on a calibrated [`NodeRate`] (the same
//! affine node model the serve/balance DES uses), so both modes — and
//! the seeded fault injection, which retries a failed attempt after a
//! backoff and quarantines a task's node assignment after repeated
//! failures — are bit-identical across runs with the same seed.

use crate::network::NetworkModel;
use crate::node::NodeRate;
use madness_gpusim::SimTime;
use madness_trace::{stage_overlap_ns, FaultAction, FaultEvent, FaultKind, Recorder, Span, Stage};

/// Deterministic uniform draw in `[0, 1)` (stateless splitmix64, the
/// same construction the serving layer uses).
fn draw(seed: u64, salt: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.rotate_left(17))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_FAIL: u64 = 0xDA6_FA11;

/// Bytes a chained value puts on the wire per unit of task cost when a
/// dependency crosses nodes (one coefficient block's worth).
const BYTES_PER_COST: u64 = 4096;

/// One task of a chained-operator workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagTask {
    /// Which operator chain (SCF orbital, BSH source) the task belongs
    /// to; chains are pinned to node `chain % nodes`.
    pub chain: u32,
    /// Global step index (iteration × phases + phase) — only consulted
    /// by the barrier baseline, which synchronizes between steps.
    pub step: u32,
    /// Pipeline stage the task's span is journaled as.
    pub stage: Stage,
    /// Work units; the task busies its node for `per_task × cost`.
    pub cost: u64,
    /// Indices of earlier tasks whose values this task consumes.
    pub deps: Vec<usize>,
}

/// A chained-operator workload: tasks plus dependency edges, acyclic by
/// construction (a task may only depend on previously pushed tasks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagWorkload {
    tasks: Vec<DagTask>,
}

impl DagWorkload {
    /// An empty workload.
    pub fn new() -> Self {
        DagWorkload::default()
    }

    /// Appends a task and returns its index.
    ///
    /// # Panics
    /// Panics if a dependency does not name an earlier task, or if a
    /// dependency's `step` is not strictly smaller when the task
    /// changes step (the barrier baseline needs steps to be a valid
    /// stratification of the edges).
    pub fn push(&mut self, task: DagTask) -> usize {
        let id = self.tasks.len();
        for &d in &task.deps {
            assert!(d < id, "dependency {d} does not name an earlier task");
            assert!(
                self.tasks[d].step < task.step,
                "dependency {d} (step {}) not in an earlier step than {} (step {})",
                self.tasks[d].step,
                id,
                task.step
            );
        }
        self.tasks.push(task);
        id
    }

    /// The tasks, in push (topological) order.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workload has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total dependency edges.
    pub fn edges(&self) -> usize {
        self.tasks.iter().map(|t| t.deps.len()).sum()
    }

    /// Number of distinct chains.
    pub fn chains(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| t.chain as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// How the cluster executes the DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagMode {
    /// Completion-triggered: a task waits only for its own
    /// predecessors (futures semantics, no stage barrier).
    Dataflow,
    /// Bulk-synchronous baseline: a global barrier between steps.
    Barrier,
}

/// Seeded fault injection for DAG execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DagFaultSpec {
    /// Seed for the stateless per-attempt failure draws.
    pub seed: u64,
    /// Probability any single attempt fails.
    pub fail_rate: f64,
    /// Detection + re-submission delay charged per failed attempt.
    pub backoff: SimTime,
    /// Failed attempts tolerated before the task's node assignment is
    /// quarantined and the work moves to the next node.
    pub max_retries: u32,
}

impl DagFaultSpec {
    /// No faults.
    pub fn none() -> Self {
        DagFaultSpec {
            seed: 0,
            fail_rate: 0.0,
            backoff: SimTime::ZERO,
            max_retries: 2,
        }
    }
}

/// Outcome of one DAG execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagRunReport {
    /// End-to-end simulated time.
    pub makespan: SimTime,
    /// Tasks executed.
    pub tasks: u64,
    /// Failed attempts injected by the fault plan.
    pub injected: u64,
    /// Re-submissions after a failed attempt (on the same node).
    pub retries: u64,
    /// Tasks whose node assignment was quarantined (moved off-node
    /// after exhausting retries).
    pub quarantines: u64,
    /// Simulated ns during which ≥ 2 distinct stages ran concurrently
    /// (the dataflow win; 0 for a barrier schedule by construction).
    pub overlap_ns: u64,
    /// Sum of all attempt spans (node busy time).
    pub busy_ns: u64,
    /// Longest dependency path (durations + cross-node hops), a lower
    /// bound on the makespan of any schedule.
    pub critical_path: SimTime,
    /// Per-node busy time.
    pub per_node_busy: Vec<SimTime>,
}

impl DagRunReport {
    /// Every attempt accounted: `tasks + injected` attempt spans were
    /// journaled, and busy time fits inside `nodes × makespan`.
    pub fn conserved(&self, nodes: usize) -> bool {
        self.busy_ns <= self.makespan.as_nanos().saturating_mul(nodes as u64)
            && self.critical_path <= self.makespan
            && self.injected == self.retries + self.quarantines
    }
}

/// Executes `workload` on `nodes` simulated nodes, journaling one span
/// per attempt (lane = node) plus fault events, and returns the run
/// report. Deterministic for a fixed `(workload, nodes, rate, net,
/// mode, faults)` tuple — replaying yields a bit-identical journal.
///
/// # Panics
/// Panics if `nodes == 0`.
pub fn run_dag<R: Recorder>(
    workload: &DagWorkload,
    nodes: usize,
    rate: NodeRate,
    net: &NetworkModel,
    mode: DagMode,
    faults: &DagFaultSpec,
    rec: &mut R,
) -> DagRunReport {
    assert!(nodes > 0, "cluster must have nodes");
    let n = workload.tasks.len();
    let mut report = DagRunReport {
        makespan: SimTime::ZERO,
        tasks: n as u64,
        injected: 0,
        retries: 0,
        quarantines: 0,
        overlap_ns: 0,
        busy_ns: 0,
        critical_path: SimTime::ZERO,
        per_node_busy: vec![SimTime::ZERO; nodes],
    };
    if n == 0 {
        return report;
    }

    // Resolve each task's attempts up front: the failure draws are
    // stateless, so retries/quarantines are data, not control flow.
    // `home[i]` is the node that finally runs task `i`.
    let mut attempts: Vec<u32> = vec![0; n]; // failed attempts before success
    let mut home: Vec<usize> = vec![0; n];
    for (i, t) in workload.tasks.iter().enumerate() {
        let assigned = t.chain as usize % nodes;
        let mut failed = 0u32;
        while failed < faults.max_retries
            && draw(faults.seed, SALT_FAIL, ((i as u64) << 8) | failed as u64) < faults.fail_rate
        {
            failed += 1;
        }
        attempts[i] = failed;
        home[i] = if failed == faults.max_retries {
            // Quarantine the assignment: the final attempt always runs,
            // on the neighbouring node, so the graph cannot deadlock.
            (assigned + 1) % nodes
        } else {
            assigned
        };
    }

    let mut finish: Vec<Option<SimTime>> = vec![None; n];
    let mut node_free: Vec<SimTime> = vec![rate.startup; nodes];
    let mut barrier_time = SimTime::ZERO; // only advanced in Barrier mode
    let mut current_step = workload.tasks[0].step;
    let mut spans: Vec<Span> = Vec::with_capacity(n);
    let mut cp: Vec<SimTime> = vec![SimTime::ZERO; n];
    let mut scheduled = vec![false; n];

    // Greedy earliest-start list scheduling: repeatedly run the ready
    // task that can start soonest (ties broken by index, so the
    // schedule is deterministic). O(n²), fine at scenario scale.
    for _round in 0..n {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, t) in workload.tasks.iter().enumerate() {
            if scheduled[i] {
                continue;
            }
            if mode == DagMode::Barrier && t.step != current_step {
                continue;
            }
            let mut ready = SimTime::ZERO;
            let mut deps_done = true;
            for &d in &t.deps {
                match finish[d] {
                    Some(f) => {
                        let hop = if home[d] == home[i] {
                            SimTime::ZERO
                        } else {
                            net.latency
                                + net.transfer_time(1, workload.tasks[d].cost * BYTES_PER_COST)
                        };
                        ready = ready.max(f + hop);
                    }
                    None => {
                        deps_done = false;
                        break;
                    }
                }
            }
            if !deps_done {
                continue;
            }
            let start = ready.max(node_free[home[i]]).max(barrier_time);
            match best {
                Some((s, _)) if s <= start => {}
                _ => best = Some((start, i)),
            }
        }
        let (start, i) = best.expect("ready task must exist: DAG is acyclic by construction");
        let t = &workload.tasks[i];
        let dur = rate.per_task * t.cost.max(1);
        let node = home[i];

        // Failed attempts: span + Injected/Retried events, then backoff.
        let mut at = start;
        for a in 0..attempts[i] {
            let end = at + dur;
            spans.push(Span {
                stage: t.stage,
                start_ns: at.as_nanos(),
                end_ns: end.as_nanos(),
                lane: node as u32,
            });
            if R::ENABLED {
                rec.span(t.stage, at.as_nanos(), end.as_nanos(), node as u32);
                rec.fault(FaultEvent {
                    kind: FaultKind::KernelLaunchFail,
                    action: FaultAction::Injected,
                    at_ns: end.as_nanos(),
                    tasks: 1,
                });
                let next = if a + 1 == faults.max_retries {
                    FaultAction::Quarantined
                } else {
                    FaultAction::Retried
                };
                rec.fault(FaultEvent {
                    kind: FaultKind::KernelLaunchFail,
                    action: next,
                    at_ns: end.as_nanos(),
                    tasks: 1,
                });
            }
            report.injected += 1;
            if a + 1 == faults.max_retries {
                report.quarantines += 1;
            } else {
                report.retries += 1;
            }
            report.busy_ns += dur.as_nanos();
            report.per_node_busy[node] += dur;
            at = end + faults.backoff;
        }

        let end = at + dur;
        spans.push(Span {
            stage: t.stage,
            start_ns: at.as_nanos(),
            end_ns: end.as_nanos(),
            lane: node as u32,
        });
        if R::ENABLED {
            rec.span(t.stage, at.as_nanos(), end.as_nanos(), node as u32);
        }
        report.busy_ns += dur.as_nanos();
        report.per_node_busy[node] += dur;
        finish[i] = Some(end);
        node_free[node] = end;
        scheduled[i] = true;
        report.makespan = report.makespan.max(end);

        // Critical path: predecessors' paths + this task's total time
        // (failed attempts and backoffs included — faults lengthen the
        // chain no schedule can beat).
        let mut base = SimTime::ZERO;
        for &d in &t.deps {
            let hop = if home[d] == home[i] {
                SimTime::ZERO
            } else {
                net.latency + net.transfer_time(1, workload.tasks[d].cost * BYTES_PER_COST)
            };
            base = base.max(cp[d] + hop);
        }
        cp[i] = base + (end.saturating_sub(start));
        report.critical_path = report.critical_path.max(cp[i]);

        // Barrier mode: advance the step once its last task finished.
        if mode == DagMode::Barrier {
            let step_done = workload
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.step == current_step)
                .all(|(j, _)| scheduled[j]);
            if step_done {
                barrier_time = workload
                    .tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.step == current_step)
                    .map(|(j, _)| finish[j].expect("scheduled"))
                    .fold(barrier_time, SimTime::max);
                current_step = workload
                    .tasks
                    .iter()
                    .filter(|t| t.step > current_step)
                    .map(|t| t.step)
                    .min()
                    .unwrap_or(current_step);
            }
        }
    }

    report.overlap_ns = stage_overlap_ns(spans.iter());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use madness_trace::MemRecorder;

    fn rate() -> NodeRate {
        NodeRate {
            startup: SimTime::from_micros(5),
            per_task: SimTime::from_micros(2),
        }
    }

    /// `chains` chained Apply→Update iterations with per-chain cost
    /// skew, the shape of the SCF scenario.
    fn chained(chains: u32, iters: u32) -> DagWorkload {
        let mut w = DagWorkload::new();
        let mut prev: Vec<Option<usize>> = vec![None; chains as usize];
        for it in 0..iters {
            for c in 0..chains {
                let deps: Vec<usize> = prev[c as usize].into_iter().collect();
                let apply = w.push(DagTask {
                    chain: c,
                    step: it * 2,
                    stage: Stage::CpuCompute,
                    cost: 40 + 25 * c as u64,
                    deps,
                });
                let upd = w.push(DagTask {
                    chain: c,
                    step: it * 2 + 1,
                    stage: Stage::Postprocess,
                    cost: 8 + 3 * c as u64,
                    deps: vec![apply],
                });
                prev[c as usize] = Some(upd);
            }
        }
        w
    }

    #[test]
    fn dataflow_overlaps_barrier_does_not() {
        let w = chained(4, 3);
        let net = NetworkModel::default();
        let mut rec = MemRecorder::new();
        let df = run_dag(
            &w,
            4,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut rec,
        );
        let ba = run_dag(
            &w,
            4,
            rate(),
            &net,
            DagMode::Barrier,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert!(df.overlap_ns > 0, "dataflow must overlap stages: {df:?}");
        assert_eq!(ba.overlap_ns, 0, "barrier must not overlap: {ba:?}");
        assert!(df.makespan <= ba.makespan, "{df:?} vs {ba:?}");
        assert!(df.conserved(4) && ba.conserved(4));
        assert_eq!(rec.spans().count() as u64, df.tasks + df.injected);
    }

    #[test]
    fn replay_is_bit_identical_including_faults() {
        let w = chained(3, 4);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 0xFA17,
            fail_rate: 0.2,
            backoff: SimTime::from_micros(30),
            max_retries: 2,
        };
        let mut rec_a = MemRecorder::new();
        let mut rec_b = MemRecorder::new();
        let a = run_dag(&w, 3, rate(), &net, DagMode::Dataflow, &faults, &mut rec_a);
        let b = run_dag(&w, 3, rate(), &net, DagMode::Dataflow, &faults, &mut rec_b);
        assert_eq!(a, b);
        assert_eq!(rec_a.to_json(), rec_b.to_json());
        assert!(a.injected > 0, "fail_rate 0.2 over 24 tasks must inject");
    }

    #[test]
    fn faults_retry_and_quarantine_without_deadlock() {
        let w = chained(2, 3);
        let net = NetworkModel::default();
        let faults = DagFaultSpec {
            seed: 7,
            fail_rate: 0.7, // hot enough to exhaust retries somewhere
            backoff: SimTime::from_micros(10),
            max_retries: 2,
        };
        let mut rec = MemRecorder::new();
        let clean = run_dag(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        let faulty = run_dag(&w, 2, rate(), &net, DagMode::Dataflow, &faults, &mut rec);
        assert!(faulty.injected > 0);
        assert!(faulty.quarantines > 0, "0.7³ per task must quarantine");
        assert_eq!(faulty.injected, faulty.retries + faulty.quarantines);
        assert!(faulty.makespan > clean.makespan);
        assert!(faulty.conserved(2));
        // Journal carries the fault story: one Injected per failure.
        let injected = rec
            .faults()
            .filter(|f| f.action == FaultAction::Injected)
            .count() as u64;
        assert_eq!(injected, faulty.injected);
    }

    #[test]
    fn fault_free_plan_is_identity() {
        let w = chained(3, 2);
        let net = NetworkModel::default();
        let base = run_dag(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        let zero = run_dag(
            &w,
            3,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec {
                seed: 99,
                fail_rate: 0.0,
                backoff: SimTime::from_micros(50),
                max_retries: 2,
            },
            &mut madness_trace::NullRecorder,
        );
        assert_eq!(base, zero);
        assert_eq!(base.injected, 0);
    }

    #[test]
    fn cross_node_dependencies_pay_a_network_hop() {
        // Chain 1's combine step consumes chain 0's value: on 2 nodes
        // that edge crosses the interconnect and must cost more than
        // the same DAG on 1 node (where every edge is local) minus the
        // serialization effect — check the hop via the critical path.
        let mut w = DagWorkload::new();
        let a = w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 10,
            deps: vec![],
        });
        let b = w.push(DagTask {
            chain: 1,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 10,
            deps: vec![],
        });
        let _join = w.push(DagTask {
            chain: 1,
            step: 1,
            stage: Stage::Postprocess,
            cost: 5,
            deps: vec![a, b],
        });
        let net = NetworkModel::default();
        let local = run_dag(
            &w,
            1,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        let remote = run_dag(
            &w,
            2,
            rate(),
            &net,
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert!(remote.critical_path > local.critical_path);
    }

    #[test]
    #[should_panic(expected = "does not name an earlier task")]
    fn forward_dependency_rejected() {
        let mut w = DagWorkload::new();
        w.push(DagTask {
            chain: 0,
            step: 1,
            stage: Stage::CpuCompute,
            cost: 1,
            deps: vec![3],
        });
    }

    #[test]
    #[should_panic(expected = "not in an earlier step")]
    fn same_step_dependency_rejected() {
        let mut w = DagWorkload::new();
        let a = w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::CpuCompute,
            cost: 1,
            deps: vec![],
        });
        w.push(DagTask {
            chain: 0,
            step: 0,
            stage: Stage::Postprocess,
            cost: 1,
            deps: vec![a],
        });
    }

    #[test]
    fn empty_workload_is_trivial() {
        let r = run_dag(
            &DagWorkload::new(),
            2,
            rate(),
            &NetworkModel::default(),
            DagMode::Dataflow,
            &DagFaultSpec::none(),
            &mut madness_trace::NullRecorder,
        );
        assert_eq!(r.tasks, 0);
        assert_eq!(r.makespan, SimTime::ZERO);
    }
}
