//! Fault plans and the injector that walks them.

use crate::draw;
use madness_trace::FaultKind;
use std::fmt;

/// Why one task (or one batch-level operation) failed.
///
/// The per-task error vocabulary the fallible GPU batch path
/// (`GpuDevice::execute_batch_injected`) reports and the recovery layers
/// consume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskError {
    /// The task's kernel failed to launch; the task did not run.
    LaunchFailed,
    /// The batch's DMA timed out and was re-issued (tasks still run,
    /// late) — reported when the retried transfer also failed.
    TransferTimedOut,
    /// The task's stream stalled past the detection deadline.
    StreamStalled,
    /// The device was lost mid-batch; nothing on it completed.
    DeviceLost,
}

impl TaskError {
    /// The fault class this error belongs to.
    pub fn kind(self) -> FaultKind {
        match self {
            TaskError::LaunchFailed => FaultKind::KernelLaunchFail,
            TaskError::TransferTimedOut => FaultKind::TransferTimeout,
            TaskError::StreamStalled => FaultKind::StreamStall,
            TaskError::DeviceLost => FaultKind::DeviceLost,
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TaskError::LaunchFailed => "kernel launch failed",
            TaskError::TransferTimedOut => "host-device transfer timed out",
            TaskError::StreamStalled => "stream stalled past deadline",
            TaskError::DeviceLost => "device lost",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TaskError {}

/// When an explicit [`Injection`] fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// The `n`-th occurrence (0-based) of the fault's injection point —
    /// the `n`-th kernel launch, `n`-th DMA, `n`-th message, …
    AtCount(u64),
    /// The first occurrence of the injection point at or after this
    /// simulated nanosecond. Fires once.
    AtTime(u64),
}

/// One explicitly planned fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Which fault fires.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: Trigger,
}

/// A whole-node lifecycle fault, scheduled at an absolute simulated
/// instant. Unlike the per-operation faults above, these describe the
/// node itself disappearing (or coming back): the serving and balance
/// simulations consume them to drive crash detection, lineage
/// re-execution and probe-ladder re-admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// The node crashes at this instant: queues, in-flight batches and
    /// chain state are lost; only the last checkpoint survives.
    CrashAt(u64),
    /// The node is cut off the interconnect for `duration_ns` starting
    /// at `at_ns`. Local state survives, but peers may declare it dead
    /// and fence its results before the partition heals.
    PartitionAt {
        /// Partition start, simulated nanoseconds.
        at_ns: u64,
        /// How long the node stays unreachable.
        duration_ns: u64,
    },
    /// A previously crashed node rejoins at this instant with cold
    /// caches, re-admitted through the probe ladder.
    RejoinAt(u64),
}

impl NodeFault {
    /// The instant the fault fires.
    pub fn at_ns(self) -> u64 {
        match self {
            NodeFault::CrashAt(t) | NodeFault::RejoinAt(t) => t,
            NodeFault::PartitionAt { at_ns, .. } => at_ns,
        }
    }

    /// The journal vocabulary this fault maps to.
    pub fn kind(self) -> FaultKind {
        match self {
            NodeFault::CrashAt(_) => FaultKind::NodeCrash,
            NodeFault::PartitionAt { .. } => FaultKind::NodePartition,
            NodeFault::RejoinAt(_) => FaultKind::NodeRejoin,
        }
    }
}

/// A deterministic, seeded description of everything that goes wrong in
/// a run.
///
/// Two layers compose:
///
/// * **explicit injections** — exact count- or time-triggered faults for
///   pinning regressions ("the 3rd kernel launch fails");
/// * **seeded rates** — per-injection-point failure probabilities drawn
///   from the stateless `(seed, point, index)` hash for chaos sweeps.
///
/// [`FaultPlan::none`] (= `Default`) is inert: no query ever reports a
/// fault and the fault-aware simulation paths stay bit-identical to the
/// fault-free ones.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    launch_fail_rate: f64,
    transfer_timeout_rate: f64,
    stream_stall_rate: f64,
    stall_ns: u64,
    device_lost_at_ns: Option<u64>,
    straggler_multiplier: f64,
    message_drop_rate: f64,
    window: Option<(u64, u64)>,
    injections: Vec<Injection>,
    node_faults: Vec<NodeFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            launch_fail_rate: 0.0,
            transfer_timeout_rate: 0.0,
            stream_stall_rate: 0.0,
            stall_ns: 2_000_000, // 2 ms, ~a watchdog tick
            device_lost_at_ns: None,
            straggler_multiplier: 1.0,
            message_drop_rate: 0.0,
            window: None,
            injections: Vec::new(),
            node_faults: Vec::new(),
        }
    }
}

/// Sanitizes a probability: NaN becomes 0, everything else is clamped to
/// `[0, 1]`. Debug builds still reject out-of-range inputs loudly so
/// plan-construction bugs surface in tests.
fn sanitize_rate(rate: f64) -> f64 {
    debug_assert!(
        !rate.is_nan() && (0.0..=1.0).contains(&rate),
        "rate must be in [0, 1]"
    );
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 1.0)
    }
}

impl FaultPlan {
    /// The inert plan: nothing ever fails.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed` for the rate draws.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-kernel-launch failure probability. NaN is treated
    /// as 0 and out-of-range values are clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Debug builds panic if `rate` is NaN or not in `[0, 1]`.
    pub fn with_launch_fail_rate(mut self, rate: f64) -> Self {
        self.launch_fail_rate = sanitize_rate(rate);
        self
    }

    /// Sets the per-DMA timeout probability. NaN is treated as 0 and
    /// out-of-range values are clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Debug builds panic if `rate` is NaN or not in `[0, 1]`.
    pub fn with_transfer_timeout_rate(mut self, rate: f64) -> Self {
        self.transfer_timeout_rate = sanitize_rate(rate);
        self
    }

    /// Sets the per-batch stream-stall probability and the stall length.
    /// NaN is treated as 0 and out-of-range values are clamped to
    /// `[0, 1]`.
    ///
    /// # Panics
    /// Debug builds panic if `rate` is NaN or not in `[0, 1]`.
    pub fn with_stream_stalls(mut self, rate: f64, stall_ns: u64) -> Self {
        self.stream_stall_rate = sanitize_rate(rate);
        self.stall_ns = stall_ns;
        self
    }

    /// The device falls off the bus at this simulated nanosecond.
    pub fn with_device_lost_at(mut self, at_ns: u64) -> Self {
        self.device_lost_at_ns = Some(at_ns);
        self
    }

    /// Marks the node a straggler: every simulated duration on it is
    /// inflated by `multiplier`.
    ///
    /// # Panics
    /// Panics if `multiplier < 1.0` or is non-finite.
    pub fn with_straggler(mut self, multiplier: f64) -> Self {
        assert!(
            multiplier >= 1.0 && multiplier.is_finite(),
            "straggler multiplier must be finite and >= 1"
        );
        self.straggler_multiplier = multiplier;
        self
    }

    /// Sets the per-message network drop probability. NaN is treated as
    /// 0 and out-of-range values are clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Debug builds panic if `rate` is NaN or not in `[0, 1]`.
    pub fn with_message_drop_rate(mut self, rate: f64) -> Self {
        self.message_drop_rate = sanitize_rate(rate);
        self
    }

    /// Confines all *rate-drawn* faults to the simulated window
    /// `[start_ns, end_ns)`. Explicit injections and the straggler
    /// multiplier are unaffected.
    ///
    /// # Panics
    /// Panics if `end_ns <= start_ns`.
    pub fn with_window(mut self, start_ns: u64, end_ns: u64) -> Self {
        assert!(end_ns > start_ns, "fault window must be non-empty");
        self.window = Some((start_ns, end_ns));
        self
    }

    /// Adds one explicit injection.
    pub fn with_injection(mut self, kind: FaultKind, trigger: Trigger) -> Self {
        self.injections.push(Injection { kind, trigger });
        self
    }

    /// Adds one whole-node lifecycle fault.
    ///
    /// # Panics
    /// Panics if a partition has zero duration.
    pub fn with_node_fault(mut self, fault: NodeFault) -> Self {
        if let NodeFault::PartitionAt { duration_ns, .. } = fault {
            assert!(duration_ns > 0, "partition must have non-zero duration");
        }
        self.node_faults.push(fault);
        self
    }

    /// The node crashes at this simulated nanosecond.
    pub fn with_node_crash_at(self, at_ns: u64) -> Self {
        self.with_node_fault(NodeFault::CrashAt(at_ns))
    }

    /// The node is partitioned off the interconnect for `duration_ns`
    /// starting at `at_ns`.
    pub fn with_node_partition(self, at_ns: u64, duration_ns: u64) -> Self {
        self.with_node_fault(NodeFault::PartitionAt { at_ns, duration_ns })
    }

    /// The node rejoins (cold) at this simulated nanosecond.
    pub fn with_node_rejoin_at(self, at_ns: u64) -> Self {
        self.with_node_fault(NodeFault::RejoinAt(at_ns))
    }

    /// The planned whole-node lifecycle faults, in insertion order.
    pub fn node_faults(&self) -> &[NodeFault] {
        &self.node_faults
    }

    /// The straggler multiplier (1.0 = keeps pace).
    pub fn straggler_multiplier(&self) -> f64 {
        self.straggler_multiplier
    }

    /// True when no query on this plan can ever report a fault.
    pub fn is_empty(&self) -> bool {
        self.launch_fail_rate == 0.0
            && self.transfer_timeout_rate == 0.0
            && self.stream_stall_rate == 0.0
            && self.device_lost_at_ns.is_none()
            && self.straggler_multiplier == 1.0
            && self.message_drop_rate == 0.0
            && self.injections.is_empty()
            && self.node_faults.is_empty()
    }
}

// Salts separating the stateless draw streams per injection point.
const SALT_LAUNCH: u64 = 0x4c41_554e; // "LAUN"
const SALT_TRANSFER: u64 = 0x5452_4e53; // "TRNS"
const SALT_STALL: u64 = 0x5354_4c4c; // "STLL"
const SALT_MESSAGE: u64 = 0x4d53_4753; // "MSGS"

/// Walks a [`FaultPlan`] at the simulators' injection points.
///
/// Holds only occurrence counters and consumed-injection flags; all
/// randomness is the plan's stateless hash, so two injectors over the
/// same plan asked the same questions give the same answers.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    launches: u64,
    transfers: u64,
    batches: u64,
    messages: u64,
    consumed: Vec<bool>,
    device_lost_fired: bool,
}

impl FaultInjector {
    /// An injector over a copy of `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            consumed: vec![false; plan.injections.len()],
            plan: plan.clone(),
            launches: 0,
            transfers: 0,
            batches: 0,
            messages: 0,
            device_lost_fired: false,
        }
    }

    /// The plan being walked.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan is empty — every query will answer "no fault".
    pub fn is_inert(&self) -> bool {
        self.plan.is_empty()
    }

    fn in_window(&self, now_ns: u64) -> bool {
        match self.plan.window {
            Some((start, end)) => now_ns >= start && now_ns < end,
            None => true,
        }
    }

    /// Fires any un-consumed explicit injection of `kind` matching the
    /// occurrence `index` or the time `now_ns`.
    fn explicit(&mut self, kind: FaultKind, index: u64, now_ns: u64) -> bool {
        for (i, inj) in self.plan.injections.iter().enumerate() {
            if self.consumed[i] || inj.kind != kind {
                continue;
            }
            let fire = match inj.trigger {
                Trigger::AtCount(n) => n == index,
                Trigger::AtTime(t) => now_ns >= t,
            };
            if fire {
                self.consumed[i] = true;
                return true;
            }
        }
        false
    }

    fn rate_hit(&self, salt: u64, index: u64, rate: f64, now_ns: u64) -> bool {
        rate > 0.0 && self.in_window(now_ns) && draw(self.plan.seed, salt, index) < rate
    }

    /// Queries the next kernel launch at simulated time `now_ns`.
    pub fn kernel_launch(&mut self, now_ns: u64) -> Option<TaskError> {
        let idx = self.launches;
        self.launches += 1;
        if self.explicit(FaultKind::KernelLaunchFail, idx, now_ns)
            || self.rate_hit(SALT_LAUNCH, idx, self.plan.launch_fail_rate, now_ns)
        {
            Some(TaskError::LaunchFailed)
        } else {
            None
        }
    }

    /// Queries the next host↔device DMA at simulated time `now_ns`.
    pub fn transfer(&mut self, now_ns: u64) -> Option<TaskError> {
        let idx = self.transfers;
        self.transfers += 1;
        if self.explicit(FaultKind::TransferTimeout, idx, now_ns)
            || self.rate_hit(SALT_TRANSFER, idx, self.plan.transfer_timeout_rate, now_ns)
        {
            Some(TaskError::TransferTimedOut)
        } else {
            None
        }
    }

    /// Queries whether this batch's streams stall; returns the stall
    /// length. Checked once per batch.
    pub fn stream_stall(&mut self, now_ns: u64) -> Option<u64> {
        let idx = self.batches;
        self.batches += 1;
        if self.explicit(FaultKind::StreamStall, idx, now_ns)
            || self.rate_hit(SALT_STALL, idx, self.plan.stream_stall_rate, now_ns)
        {
            Some(self.plan.stall_ns)
        } else {
            None
        }
    }

    /// True when the device is lost at or before `now_ns`. Fires once;
    /// after the driver-level reset (`GpuDevice::revive`) the plan's
    /// loss instant is spent.
    pub fn device_lost(&mut self, now_ns: u64) -> bool {
        if self.device_lost_fired {
            return false;
        }
        let planned = self.plan.device_lost_at_ns.is_some_and(|t| now_ns >= t);
        if planned || self.explicit(FaultKind::DeviceLost, 0, now_ns) {
            self.device_lost_fired = true;
            return true;
        }
        false
    }

    /// Queries the next outbound network message; true = dropped.
    pub fn message_dropped(&mut self, now_ns: u64) -> bool {
        let idx = self.messages;
        self.messages += 1;
        self.explicit(FaultKind::DroppedMessage, idx, now_ns)
            || self.rate_hit(SALT_MESSAGE, idx, self.plan.message_drop_rate, now_ns)
    }

    /// Counts dropped messages among the next `n_msgs` sends.
    pub fn dropped_messages(&mut self, n_msgs: u64, now_ns: u64) -> u64 {
        if self.is_inert() {
            // Keep the counter advancing without a per-message loop on
            // the fault-free path.
            self.messages += n_msgs;
            return 0;
        }
        (0..n_msgs).filter(|_| self.message_dropped(now_ns)).count() as u64
    }

    /// The node's straggler multiplier (1.0 = keeps pace).
    pub fn straggler_multiplier(&self) -> f64 {
        self.plan.straggler_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.is_inert());
        for t in [0, 1_000, u64::MAX] {
            assert_eq!(inj.kernel_launch(t), None);
            assert_eq!(inj.transfer(t), None);
            assert_eq!(inj.stream_stall(t), None);
            assert!(!inj.device_lost(t));
            assert!(!inj.message_dropped(t));
        }
        assert_eq!(inj.dropped_messages(1_000, 0), 0);
        assert_eq!(inj.straggler_multiplier(), 1.0);
    }

    #[test]
    fn seeded_rates_are_replayable() {
        let plan = FaultPlan::seeded(42)
            .with_launch_fail_rate(0.2)
            .with_transfer_timeout_rate(0.1);
        assert!(!plan.is_empty());
        let run = |plan: &FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            (0..500)
                .map(|i| (inj.kernel_launch(i).is_some(), inj.transfer(i).is_some()))
                .collect::<Vec<_>>()
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b, "same plan must inject identically");
        let launches = a.iter().filter(|(l, _)| *l).count();
        let transfers = a.iter().filter(|(_, t)| *t).count();
        assert!(
            (60..140).contains(&launches),
            "rate 0.2 → ~100, got {launches}"
        );
        assert!(
            (20..80).contains(&transfers),
            "rate 0.1 → ~50, got {transfers}"
        );
        // A different seed injects at different places.
        let c = run(&FaultPlan::seeded(43).with_launch_fail_rate(0.2));
        assert_ne!(
            a.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            c.iter().map(|(l, _)| *l).collect::<Vec<_>>()
        );
    }

    #[test]
    fn explicit_count_trigger_fires_exactly_once() {
        let plan =
            FaultPlan::none().with_injection(FaultKind::KernelLaunchFail, Trigger::AtCount(2));
        let mut inj = FaultInjector::new(&plan);
        let hits: Vec<bool> = (0..6).map(|_| inj.kernel_launch(0).is_some()).collect();
        assert_eq!(hits, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn explicit_time_trigger_fires_at_first_opportunity() {
        let plan =
            FaultPlan::none().with_injection(FaultKind::TransferTimeout, Trigger::AtTime(1_000));
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.transfer(500), None);
        assert_eq!(inj.transfer(1_500), Some(TaskError::TransferTimedOut));
        assert_eq!(inj.transfer(2_000), None, "time triggers are one-shot");
    }

    #[test]
    fn window_confines_rate_faults() {
        let plan = FaultPlan::seeded(7)
            .with_launch_fail_rate(1.0)
            .with_window(1_000, 2_000);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.kernel_launch(500), None, "before the window");
        assert!(inj.kernel_launch(1_000).is_some(), "window start inclusive");
        assert!(inj.kernel_launch(1_999).is_some());
        assert_eq!(inj.kernel_launch(2_000), None, "window end exclusive");
    }

    #[test]
    fn device_lost_fires_once_at_its_instant() {
        let plan = FaultPlan::none().with_device_lost_at(5_000);
        let mut inj = FaultInjector::new(&plan);
        assert!(!inj.device_lost(4_999));
        assert!(inj.device_lost(5_000));
        assert!(!inj.device_lost(6_000), "loss is one-shot (driver reset)");
    }

    #[test]
    fn stream_stall_reports_configured_length() {
        let plan = FaultPlan::seeded(3).with_stream_stalls(1.0, 77);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.stream_stall(0), Some(77));
    }

    #[test]
    fn message_drops_follow_rate() {
        let plan = FaultPlan::seeded(11).with_message_drop_rate(0.5);
        let mut inj = FaultInjector::new(&plan);
        let dropped = inj.dropped_messages(1_000, 0);
        assert!(
            (400..600).contains(&dropped),
            "rate 0.5 → ~500, got {dropped}"
        );
    }

    #[test]
    fn straggler_is_not_inert_but_injects_nothing() {
        let plan = FaultPlan::none().with_straggler(3.0);
        assert!(!plan.is_empty());
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.straggler_multiplier(), 3.0);
        assert_eq!(inj.kernel_launch(0), None);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rates are clamped in release")]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::none().with_launch_fail_rate(1.5);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rates are clamped in release")]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn nan_rate_rejected() {
        let _ = FaultPlan::none().with_message_drop_rate(f64::NAN);
    }

    #[test]
    fn boundary_rates_accepted() {
        // 0 and 1 are legal for every probability builder; 0 keeps the
        // plan inert, 1 fires on every draw.
        let inert = FaultPlan::none()
            .with_launch_fail_rate(0.0)
            .with_transfer_timeout_rate(0.0)
            .with_stream_stalls(0.0, 10)
            .with_message_drop_rate(0.0);
        assert!(inert.is_empty());
        let hot = FaultPlan::seeded(1)
            .with_launch_fail_rate(1.0)
            .with_transfer_timeout_rate(1.0)
            .with_stream_stalls(1.0, 10)
            .with_message_drop_rate(1.0);
        let mut inj = FaultInjector::new(&hot);
        assert!(inj.kernel_launch(0).is_some());
        assert!(inj.transfer(0).is_some());
        assert!(inj.stream_stall(0).is_some());
        assert!(inj.message_dropped(0));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_range_rates_clamp_in_release() {
        let mut inj = FaultInjector::new(&FaultPlan::seeded(1).with_launch_fail_rate(1.5));
        assert!(inj.kernel_launch(0).is_some(), "clamped to 1.0");
        let nan = FaultPlan::none().with_message_drop_rate(f64::NAN);
        assert!(nan.is_empty(), "NaN sanitized to 0.0");
    }

    #[test]
    fn node_faults_are_kept_in_order_and_break_inertness() {
        let plan = FaultPlan::none()
            .with_node_crash_at(5_000)
            .with_node_partition(9_000, 2_000)
            .with_node_rejoin_at(20_000);
        assert!(!plan.is_empty());
        let nf = plan.node_faults();
        assert_eq!(nf.len(), 3);
        assert_eq!(nf[0], NodeFault::CrashAt(5_000));
        assert_eq!(nf[0].at_ns(), 5_000);
        assert_eq!(nf[0].kind(), FaultKind::NodeCrash);
        assert_eq!(nf[1].at_ns(), 9_000);
        assert_eq!(nf[1].kind(), FaultKind::NodePartition);
        assert_eq!(nf[2].kind(), FaultKind::NodeRejoin);
        // Node faults never leak into the per-operation injector paths.
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.kernel_launch(6_000), None);
        assert!(!inj.message_dropped(6_000));
    }

    #[test]
    #[should_panic(expected = "partition must have non-zero duration")]
    fn zero_duration_partition_rejected() {
        let _ = FaultPlan::none().with_node_partition(1_000, 0);
    }

    #[test]
    fn task_errors_map_to_their_fault_kinds() {
        assert_eq!(TaskError::LaunchFailed.kind(), FaultKind::KernelLaunchFail);
        assert_eq!(
            TaskError::TransferTimedOut.kind(),
            FaultKind::TransferTimeout
        );
        assert_eq!(TaskError::StreamStalled.kind(), FaultKind::StreamStall);
        assert_eq!(TaskError::DeviceLost.kind(), FaultKind::DeviceLost);
        assert_eq!(TaskError::DeviceLost.to_string(), "device lost");
    }
}
