//! # madness-faults
//!
//! Deterministic fault injection and recovery policy for the madness-rs
//! simulators.
//!
//! At Titan scale the hybrid Apply pipeline's implicit assumption — every
//! kernel launches, every DMA completes, every node keeps pace — is
//! exactly what breaks first. This crate makes failure a first-class,
//! *reproducible* input to the simulators:
//!
//! * a [`FaultPlan`] describes **what goes wrong and when**: seeded
//!   per-injection-point failure rates, explicit count- or
//!   SimTime-triggered injections, a device-lost instant, a slow-node
//!   straggler multiplier and a message-drop rate, optionally confined to
//!   a fault window;
//! * a [`FaultInjector`] walks a plan at the simulators' injection points
//!   (kernel launch, DMA, stream drain, network send). All randomness is
//!   a stateless hash of `(seed, injection point, occurrence index)`, so
//!   a given plan produces the **same faults at the same places on every
//!   run**, independent of query order — chaos tests are replayable and
//!   failures bisectable;
//! * [`TaskError`], [`RecoveryPolicy`], [`DeviceHealth`] and
//!   [`HealthTracker`] are the error-path vocabulary the runtime layers
//!   share: per-task failure causes, capped exponential backoff with
//!   deterministic jitter, and the quarantine → probing re-admission
//!   state machine;
//! * [`NodeFault`] scales the taxonomy from devices to whole nodes
//!   (crash / partition / rejoin at planned instants), and
//!   [`CircuitBreaker`] generalizes the health ladder to per-
//!   `(tenant, node)` closed → open → half-open gating with
//!   deterministic probe admission for the serving cluster.
//!
//! The cardinal invariant: an **empty plan is inert**. Every injector
//! query on [`FaultPlan::none`] returns "no fault" without perturbing any
//! simulated timing, so fault-aware code paths stay bit-identical to the
//! fault-free ones (the `fault_free_identity` integration tests pin
//! this).
//!
//! The fault taxonomy ([`FaultKind`], [`FaultAction`], [`FaultEvent`])
//! lives in `madness-trace` so the journal can record fault events
//! without a dependency cycle; this crate re-exports it as the canonical
//! vocabulary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod breaker;
mod plan;
mod recovery;
mod timeline;

pub use breaker::{BreakerMap, BreakerPolicy, BreakerState, CircuitBreaker};
pub use madness_trace::{FaultAction, FaultEvent, FaultKind};
pub use plan::{FaultInjector, FaultPlan, Injection, NodeFault, TaskError, Trigger};
pub use recovery::{DeviceHealth, GpuGate, HealthTracker, RecoveryPolicy};
pub use timeline::NodeTimeline;

/// Stateless deterministic draw in `[0, 1)` for `(seed, salt, index)`.
///
/// splitmix64 over the mixed key: the same triple always yields the same
/// value, and consecutive indices are statistically independent. Used
/// for both fault-rate draws and backoff jitter, so *nothing* in this
/// crate carries RNG state — determinism cannot be lost to query
/// reordering.
pub(crate) fn draw(seed: u64, salt: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.rotate_left(17))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_spread() {
        assert_eq!(draw(1, 2, 3), draw(1, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 2, 4));
        assert_ne!(draw(1, 2, 3), draw(2, 2, 3));
        let mean: f64 = (0..10_000).map(|i| draw(42, 7, i)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "biased draws: mean {mean}");
        for i in 0..10_000 {
            let d = draw(42, 7, i);
            assert!((0.0..1.0).contains(&d));
        }
    }
}
