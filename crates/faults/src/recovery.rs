//! Recovery policy: backoff, device health, quarantine and re-admission.

use crate::draw;

const SALT_JITTER: u64 = 0x4a49_5454; // "JITT"

/// How the dispatcher reacts to GPU-side failures.
///
/// All durations are simulated nanoseconds; jitter is drawn from the
/// same stateless hash as fault injection, so a given policy + failure
/// history always produces the same backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// GPU retries for a failed batch before falling back to CPU.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff_ns: u64,
    /// Ceiling on any single backoff, jitter included: the exponential
    /// growth saturates here and the jittered value is clamped back to
    /// it, so no retry ever waits longer than the cap.
    pub backoff_cap_ns: u64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub jitter_seed: u64,
    /// Consecutive failed batches before the device is quarantined.
    pub quarantine_after: u32,
    /// Length of the first quarantine window.
    pub quarantine_ns: u64,
    /// Ceiling on the (doubling) quarantine window.
    pub quarantine_cap_ns: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            base_backoff_ns: 100_000,   // 100 µs
            backoff_cap_ns: 10_000_000, // 10 ms
            jitter: 0.25,
            jitter_seed: 0,
            quarantine_after: 3,
            quarantine_ns: 5_000_000,      // 5 ms
            quarantine_cap_ns: 80_000_000, // 80 ms
        }
    }
}

impl RecoveryPolicy {
    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics when a field is out of range (jitter outside `[0, 1]`,
    /// zero backoff base, cap below base, zero quarantine threshold or
    /// window, quarantine cap below window).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter must be in [0, 1]"
        );
        assert!(self.base_backoff_ns > 0, "base backoff must be positive");
        assert!(
            self.backoff_cap_ns >= self.base_backoff_ns,
            "backoff cap below base"
        );
        assert!(
            self.quarantine_after > 0,
            "quarantine threshold must be positive"
        );
        assert!(self.quarantine_ns > 0, "quarantine window must be positive");
        assert!(
            self.quarantine_cap_ns >= self.quarantine_ns,
            "quarantine cap below window"
        );
    }

    /// The backoff before retry `attempt` (0-based): capped exponential
    /// growth from the base, scaled by deterministic jitter keyed on
    /// `salt` (use something batch-unique so concurrent failures don't
    /// thundering-herd).
    ///
    /// Overflow-safe at any `attempt`: the shift is bounded, the multiply
    /// saturates, and the jittered value is clamped to the cap instead of
    /// wrapping — `backoff_ns(63, s) <= backoff_cap_ns` always holds.
    pub fn backoff_ns(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self
            .base_backoff_ns
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.backoff_cap_ns);
        if self.jitter == 0.0 {
            return exp;
        }
        let u = draw(
            self.jitter_seed,
            SALT_JITTER,
            salt.wrapping_add(attempt as u64),
        );
        let factor = 1.0 + self.jitter * (2.0 * u - 1.0);
        // f64→u64 casts saturate, so even an enormous cap cannot wrap;
        // the min keeps the cap a hard ceiling through the jitter path.
        (((exp as f64) * factor).round() as u64).min(self.backoff_cap_ns)
    }
}

/// The dispatcher-visible health of one GPU device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceHealth {
    /// No recent failures.
    Healthy,
    /// Recent failures, still in service.
    Degraded {
        /// Failed batches since the last success.
        consecutive_failures: u32,
    },
    /// Out of service until the window expires.
    Quarantined {
        /// Simulated nanosecond at which probing may begin.
        until_ns: u64,
    },
}

/// What the dispatcher may send to the device right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuGate {
    /// Full service: plan the normal GPU share.
    Open,
    /// Quarantine expired: send one small probe batch only.
    Probe,
    /// Quarantined: send nothing to the GPU.
    Closed,
}

/// Tracks one device's failure history and drives the
/// quarantine → probe → re-admission state machine.
///
/// `quarantine_after` consecutive failed batches close the gate for a
/// quarantine window; each re-quarantine doubles the window up to the
/// cap, and a successful probe resets it. The first successful batch
/// after a quarantine reports `readmitted = true` so the caller can
/// reset its cost model (the device's post-reset performance is
/// unknown).
#[derive(Clone, Debug)]
pub struct HealthTracker {
    policy: RecoveryPolicy,
    health: DeviceHealth,
    window_ns: u64,
    probing: bool,
    quarantines: u64,
    readmissions: u64,
}

impl HealthTracker {
    /// A healthy tracker under `policy`.
    ///
    /// # Panics
    /// Panics if the policy fails [`RecoveryPolicy::validate`].
    pub fn new(policy: RecoveryPolicy) -> Self {
        policy.validate();
        HealthTracker {
            window_ns: policy.quarantine_ns,
            policy,
            health: DeviceHealth::Healthy,
            probing: false,
            quarantines: 0,
            readmissions: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Current health.
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// Times this device has been quarantined.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Times this device has been re-admitted after quarantine.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    /// What may be dispatched at simulated time `now_ns`.
    pub fn gate(&mut self, now_ns: u64) -> GpuGate {
        match self.health {
            DeviceHealth::Quarantined { until_ns } if now_ns < until_ns => GpuGate::Closed,
            DeviceHealth::Quarantined { .. } => {
                self.probing = true;
                GpuGate::Probe
            }
            _ if self.probing => GpuGate::Probe,
            _ => GpuGate::Open,
        }
    }

    /// Records a failed batch; returns the new health.
    ///
    /// A failure while probing re-quarantines immediately with a doubled
    /// window; otherwise failures accumulate toward the quarantine
    /// threshold.
    pub fn on_batch_failed(&mut self, now_ns: u64) -> DeviceHealth {
        if self.probing {
            self.probing = false;
            self.window_ns = (self.window_ns * 2).min(self.policy.quarantine_cap_ns);
            return self.quarantine(now_ns);
        }
        let failures = match self.health {
            DeviceHealth::Degraded {
                consecutive_failures,
            } => consecutive_failures + 1,
            _ => 1,
        };
        if failures >= self.policy.quarantine_after {
            self.quarantine(now_ns)
        } else {
            self.health = DeviceHealth::Degraded {
                consecutive_failures: failures,
            };
            self.health
        }
    }

    /// Records a successful batch; returns `true` when this success
    /// re-admits the device out of a quarantine (caller should reset
    /// its cost model for the device).
    pub fn on_batch_ok(&mut self, _now_ns: u64) -> bool {
        let readmitted = self.probing || matches!(self.health, DeviceHealth::Quarantined { .. });
        self.probing = false;
        self.health = DeviceHealth::Healthy;
        if readmitted {
            self.window_ns = self.policy.quarantine_ns;
            self.readmissions += 1;
        }
        readmitted
    }

    /// Quarantines immediately (device-lost class failures bypass the
    /// consecutive-failure threshold).
    pub fn force_quarantine(&mut self, now_ns: u64) -> DeviceHealth {
        self.probing = false;
        self.quarantine(now_ns)
    }

    fn quarantine(&mut self, now_ns: u64) -> DeviceHealth {
        self.quarantines += 1;
        self.health = DeviceHealth::Quarantined {
            until_ns: now_ns.saturating_add(self.window_ns),
        };
        self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let pol = RecoveryPolicy {
            jitter: 0.0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(pol.backoff_ns(0, 0), 100_000);
        assert_eq!(pol.backoff_ns(1, 0), 200_000);
        assert_eq!(pol.backoff_ns(2, 0), 400_000);
        assert_eq!(pol.backoff_ns(20, 0), pol.backoff_cap_ns, "caps at ceiling");
        assert_eq!(
            pol.backoff_ns(63, 0),
            pol.backoff_cap_ns,
            "no shift overflow"
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let pol = RecoveryPolicy::default();
        assert_eq!(pol.backoff_ns(1, 7), pol.backoff_ns(1, 7));
        assert_ne!(
            pol.backoff_ns(1, 7),
            pol.backoff_ns(1, 8),
            "salt decorrelates"
        );
        for salt in 0..200 {
            let b = pol.backoff_ns(0, salt) as f64;
            let base = pol.base_backoff_ns as f64;
            assert!(b >= base * (1.0 - pol.jitter) - 1.0);
            assert!(b <= base * (1.0 + pol.jitter) + 1.0);
        }
    }

    #[test]
    fn failures_accumulate_then_quarantine() {
        let mut hl = HealthTracker::new(RecoveryPolicy::default());
        assert_eq!(hl.gate(0), GpuGate::Open);
        assert_eq!(
            hl.on_batch_failed(10),
            DeviceHealth::Degraded {
                consecutive_failures: 1
            }
        );
        assert_eq!(hl.gate(11), GpuGate::Open, "degraded still serves");
        assert_eq!(
            hl.on_batch_failed(20),
            DeviceHealth::Degraded {
                consecutive_failures: 2
            }
        );
        let q = hl.on_batch_failed(30);
        assert_eq!(
            q,
            DeviceHealth::Quarantined {
                until_ns: 30 + 5_000_000
            }
        );
        assert_eq!(hl.quarantines(), 1);
        assert_eq!(hl.gate(31), GpuGate::Closed);
    }

    #[test]
    fn success_resets_degraded_count() {
        let mut hl = HealthTracker::new(RecoveryPolicy::default());
        hl.on_batch_failed(0);
        hl.on_batch_failed(1);
        assert!(!hl.on_batch_ok(2), "plain success is not a re-admission");
        assert_eq!(hl.health(), DeviceHealth::Healthy);
        // The counter restarted: two more failures don't quarantine.
        hl.on_batch_failed(3);
        hl.on_batch_failed(4);
        assert!(matches!(
            hl.health(),
            DeviceHealth::Degraded {
                consecutive_failures: 2
            }
        ));
    }

    #[test]
    fn probe_readmission_resets_window_and_counts() {
        let pol = RecoveryPolicy::default();
        let mut hl = HealthTracker::new(pol);
        hl.force_quarantine(0);
        assert_eq!(hl.gate(pol.quarantine_ns - 1), GpuGate::Closed);
        assert_eq!(hl.gate(pol.quarantine_ns), GpuGate::Probe);
        assert_eq!(
            hl.gate(pol.quarantine_ns + 1),
            GpuGate::Probe,
            "probe is sticky"
        );
        assert!(
            hl.on_batch_ok(pol.quarantine_ns + 100),
            "probe success re-admits"
        );
        assert_eq!(hl.readmissions(), 1);
        assert_eq!(hl.gate(pol.quarantine_ns + 101), GpuGate::Open);
    }

    #[test]
    fn failed_probe_doubles_window_up_to_cap() {
        let pol = RecoveryPolicy {
            quarantine_ns: 1_000,
            quarantine_cap_ns: 3_000,
            ..RecoveryPolicy::default()
        };
        let mut hl = HealthTracker::new(pol);
        hl.force_quarantine(0);
        assert_eq!(hl.gate(1_000), GpuGate::Probe);
        let q = hl.on_batch_failed(1_100);
        assert_eq!(
            q,
            DeviceHealth::Quarantined {
                until_ns: 1_100 + 2_000
            },
            "doubled"
        );
        assert_eq!(hl.gate(3_100), GpuGate::Probe);
        let q = hl.on_batch_failed(3_200);
        assert_eq!(
            q,
            DeviceHealth::Quarantined {
                until_ns: 3_200 + 3_000
            },
            "capped"
        );
        // Success after probe resets the window to base.
        assert_eq!(hl.gate(6_200), GpuGate::Probe);
        assert!(hl.on_batch_ok(6_300));
        hl.force_quarantine(10_000);
        assert_eq!(hl.health(), DeviceHealth::Quarantined { until_ns: 11_000 });
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1]")]
    fn invalid_policy_rejected() {
        HealthTracker::new(RecoveryPolicy {
            jitter: 2.0,
            ..RecoveryPolicy::default()
        });
    }

    #[test]
    fn backoff_attempt_63_boundary_saturates_at_cap() {
        // Jitter-free path: the shift is bounded and the cap binds.
        let flat = RecoveryPolicy {
            jitter: 0.0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(flat.backoff_ns(63, 0), flat.backoff_cap_ns);
        assert_eq!(flat.backoff_ns(u32::MAX, 0), flat.backoff_cap_ns);
        // Extreme base/cap: the multiply saturates instead of wrapping.
        let huge = RecoveryPolicy {
            base_backoff_ns: u64::MAX / 2,
            backoff_cap_ns: u64::MAX,
            jitter: 0.0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(huge.backoff_ns(63, 0), u64::MAX);
        // Jitter path at the boundary: deterministic, and the cap stays
        // a hard ceiling even though jitter would push past it.
        let pol = RecoveryPolicy::default();
        for salt in 0..100 {
            let b = pol.backoff_ns(63, salt);
            assert!(b <= pol.backoff_cap_ns, "jittered backoff above cap");
            assert!(
                b as f64 >= pol.backoff_cap_ns as f64 * (1.0 - pol.jitter) - 1.0,
                "jittered backoff below the jitter envelope"
            );
            assert_eq!(b, pol.backoff_ns(63, salt), "deterministic");
        }
        // Jittered extreme cap: the f64 round-trip saturates, no wrap.
        let huge_jitter = RecoveryPolicy {
            base_backoff_ns: u64::MAX / 2,
            backoff_cap_ns: u64::MAX,
            ..RecoveryPolicy::default()
        };
        for salt in 0..100 {
            assert!(huge_jitter.backoff_ns(63, salt) >= u64::MAX / 4);
        }
    }

    #[test]
    fn gate_flips_exactly_at_quarantine_window_end() {
        let pol = RecoveryPolicy::default();
        let mut hl = HealthTracker::new(pol);
        hl.force_quarantine(1_000);
        let until = 1_000 + pol.quarantine_ns;
        assert_eq!(hl.health(), DeviceHealth::Quarantined { until_ns: until });
        assert_eq!(hl.gate(until - 1), GpuGate::Closed, "one ns early: closed");
        assert_eq!(hl.gate(until), GpuGate::Probe, "window end is inclusive");
    }

    #[test]
    fn ok_at_probe_instant_readmits_with_zero_length_window() {
        // The probe batch completes at the very instant the gate opened:
        // a zero-length probe window must still count as a re-admission
        // and reset the (doubled) quarantine window back to base.
        let pol = RecoveryPolicy {
            quarantine_ns: 1_000,
            quarantine_cap_ns: 4_000,
            ..RecoveryPolicy::default()
        };
        let mut hl = HealthTracker::new(pol);
        hl.force_quarantine(0);
        assert_eq!(hl.gate(1_000), GpuGate::Probe);
        hl.on_batch_failed(1_000); // failed probe doubles the window
        assert_eq!(hl.health(), DeviceHealth::Quarantined { until_ns: 3_000 });
        assert_eq!(hl.gate(3_000), GpuGate::Probe);
        assert!(hl.on_batch_ok(3_000), "zero-length probe still re-admits");
        assert_eq!(hl.health(), DeviceHealth::Healthy);
        assert_eq!(hl.gate(3_000), GpuGate::Open);
        assert_eq!((hl.quarantines(), hl.readmissions()), (2, 1));
        // Window was reset: the next quarantine uses the base window.
        hl.force_quarantine(10_000);
        assert_eq!(hl.health(), DeviceHealth::Quarantined { until_ns: 11_000 });
    }

    mod interleavings {
        use super::*;
        use proptest::prelude::*;

        #[derive(Clone, Copy, Debug)]
        enum Op {
            Gate,
            Ok,
            Failed,
            Force,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                Just(Op::Gate),
                Just(Op::Ok),
                Just(Op::Failed),
                Just(Op::Force),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Counters are monotone under any interleaving at any
            /// (nondecreasing) clock, re-admissions never outrun
            /// quarantines, and a Probe gate only appears while at
            /// least one quarantine has happened.
            #[test]
            fn counters_monotone_under_interleaving(
                ops in proptest::collection::vec((op_strategy(), 0u64..50_000), 1..80),
            ) {
                let pol = RecoveryPolicy {
                    quarantine_ns: 1_000,
                    quarantine_cap_ns: 8_000,
                    ..RecoveryPolicy::default()
                };
                let mut hl = HealthTracker::new(pol);
                let mut now = 0u64;
                let (mut last_q, mut last_r) = (0u64, 0u64);
                for (op, dt) in ops {
                    now += dt;
                    match op {
                        Op::Gate => {
                            if hl.gate(now) == GpuGate::Probe {
                                prop_assert!(hl.quarantines() > 0);
                            }
                        }
                        Op::Ok => {
                            let readmitted = hl.on_batch_ok(now);
                            prop_assert_eq!(hl.health(), DeviceHealth::Healthy);
                            if readmitted {
                                prop_assert_eq!(hl.readmissions(), last_r + 1);
                            }
                        }
                        Op::Failed => {
                            hl.on_batch_failed(now);
                        }
                        Op::Force => {
                            hl.force_quarantine(now);
                            let quarantined =
                                matches!(hl.health(), DeviceHealth::Quarantined { .. });
                            prop_assert!(quarantined);
                        }
                    }
                    prop_assert!(hl.quarantines() >= last_q, "quarantines decreased");
                    prop_assert!(hl.readmissions() >= last_r, "readmissions decreased");
                    prop_assert!(
                        hl.readmissions() <= hl.quarantines(),
                        "readmitted more often than quarantined"
                    );
                    last_q = hl.quarantines();
                    last_r = hl.readmissions();
                }
            }
        }
    }
}
