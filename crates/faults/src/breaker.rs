//! Per-(tenant, node) circuit breakers for the serving layer.
//!
//! [`HealthTracker`](crate::HealthTracker) guards one *device* behind one
//! dispatcher; the serving cluster needs the same closed → open →
//! half-open ladder per **(tenant, node)** pair, because a node that is
//! dead for everyone and a node that only one tenant's kind keeps
//! crashing on are different failures. [`CircuitBreaker`] is that
//! generalization: a deterministic state machine with counted half-open
//! probe admission (the first `half_open_probes` admission queries after
//! the open window expires are probes; `probe_successes` consecutive
//! successes close the breaker, any failure re-opens it with a doubled
//! window up to a cap). No RNG anywhere — the same call sequence always
//! walks the same states, preserving bit-identical replay.

/// Tuning for a [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// Length of the first open window, simulated nanoseconds.
    pub open_ns: u64,
    /// Ceiling on the (doubling) open window.
    pub open_cap_ns: u64,
    /// Admission queries allowed through per half-open round.
    pub half_open_probes: u32,
    /// Consecutive probe successes required to close the breaker.
    pub probe_successes: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            open_ns: 5_000_000,      // 5 ms, matches the quarantine base
            open_cap_ns: 80_000_000, // 80 ms
            half_open_probes: 1,
            probe_successes: 1,
        }
    }
}

impl BreakerPolicy {
    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics when a field is out of range (zero threshold, zero or
    /// capless open window, zero probe counts).
    pub fn validate(&self) {
        assert!(self.failure_threshold > 0, "failure threshold must be > 0");
        assert!(self.open_ns > 0, "open window must be positive");
        assert!(self.open_cap_ns >= self.open_ns, "open cap below window");
        assert!(self.half_open_probes > 0, "need at least one probe slot");
        assert!(self.probe_successes > 0, "need at least one probe success");
    }
}

/// Where a [`CircuitBreaker`] is in its ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures accumulate toward the threshold.
    Closed,
    /// Tripped: every admission is refused until the window expires.
    Open {
        /// Simulated nanosecond at which half-open probing may begin.
        until_ns: u64,
    },
    /// Window expired: a bounded number of probe admissions decide
    /// whether to close again or re-open with a doubled window.
    HalfOpen,
}

/// One closed → open → half-open breaker.
///
/// Drive it with [`CircuitBreaker::admit`] before sending work and
/// [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`] when
/// the work's outcome is known. [`CircuitBreaker::trip`] force-opens it
/// (node declared dead). Deterministic: state depends only on the call
/// sequence and the clock values passed in.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    window_ns: u64,
    consecutive_failures: u32,
    probes_in_flight: u32,
    probe_successes: u32,
    trips: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    ///
    /// # Panics
    /// Panics if the policy fails [`BreakerPolicy::validate`].
    pub fn new(policy: BreakerPolicy) -> Self {
        policy.validate();
        CircuitBreaker {
            window_ns: policy.open_ns,
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            trips: 0,
            closes: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    /// Current state (after resolving an expired open window at `now_ns`).
    pub fn state(&mut self, now_ns: u64) -> BreakerState {
        self.refresh(now_ns);
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times the breaker has closed again after a trip.
    pub fn closes(&self) -> u64 {
        self.closes
    }

    fn refresh(&mut self, now_ns: u64) {
        if let BreakerState::Open { until_ns } = self.state {
            if now_ns >= until_ns {
                self.state = BreakerState::HalfOpen;
                self.probes_in_flight = 0;
                self.probe_successes = 0;
            }
        }
    }

    /// Whether one unit of work may be sent at `now_ns`. Closed admits
    /// everything; open admits nothing; half-open admits exactly
    /// `half_open_probes` queries per round (deterministic counting, no
    /// coin flips) and refuses the rest.
    pub fn admit(&mut self, now_ns: u64) -> bool {
        self.refresh(now_ns);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open { .. } => false,
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.policy.half_open_probes {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful unit of work.
    ///
    /// Returns `true` when this success *closes* a previously tripped
    /// breaker (callers reset cost models / mark the node warm again).
    pub fn on_success(&mut self, now_ns: u64) -> bool {
        self.refresh(now_ns);
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            // A success while nominally open (work already in flight
            // when the breaker tripped) is evidence the target lives:
            // treat it like a successful probe round.
            BreakerState::Open { .. } | BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.policy.probe_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.window_ns = self.policy.open_ns;
                    self.closes += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a failed unit of work.
    pub fn on_failure(&mut self, now_ns: u64) {
        self.refresh(now_ns);
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.failure_threshold {
                    self.open(now_ns);
                }
            }
            // A failed probe re-opens with a doubled window.
            BreakerState::HalfOpen => {
                self.window_ns = (self.window_ns * 2).min(self.policy.open_cap_ns);
                self.open(now_ns);
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Force-opens the breaker (the cluster declared the node dead).
    pub fn trip(&mut self, now_ns: u64) {
        self.refresh(now_ns);
        self.open(now_ns);
    }

    fn open(&mut self, now_ns: u64) {
        self.state = BreakerState::Open {
            until_ns: now_ns.saturating_add(self.window_ns),
        };
        self.consecutive_failures = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.trips += 1;
    }
}

/// A keyed collection of breakers, one per `(tenant, node)` pair,
/// created closed on first touch.
#[derive(Clone, Debug, Default)]
pub struct BreakerMap {
    policy: Option<BreakerPolicy>,
    breakers: std::collections::BTreeMap<(u32, u32), CircuitBreaker>,
}

impl BreakerMap {
    /// An empty map handing out breakers under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        policy.validate();
        BreakerMap {
            policy: Some(policy),
            breakers: std::collections::BTreeMap::new(),
        }
    }

    /// The breaker for `(tenant, node)`, created closed if absent.
    pub fn get(&mut self, tenant: u32, node: u32) -> &mut CircuitBreaker {
        let policy = self.policy.unwrap_or_default();
        self.breakers
            .entry((tenant, node))
            .or_insert_with(|| CircuitBreaker::new(policy))
    }

    /// Trips every breaker targeting `node` (whole-node death).
    pub fn trip_node(&mut self, node: u32, now_ns: u64) {
        for ((_, n), b) in self.breakers.iter_mut() {
            if *n == node {
                b.trip(now_ns);
            }
        }
    }

    /// Total trips across every pair.
    pub fn total_trips(&self) -> u64 {
        self.breakers.values().map(|b| b.trips()).sum()
    }

    /// Total closes across every pair.
    pub fn total_closes(&self) -> u64 {
        self.breakers.values().map(|b| b.closes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_blocks_while_open() {
        let mut cb = CircuitBreaker::new(BreakerPolicy::default());
        assert!(cb.admit(0));
        cb.on_failure(10);
        cb.on_failure(20);
        assert!(cb.admit(25), "below threshold still admits");
        cb.on_failure(30);
        assert_eq!(cb.trips(), 1);
        assert_eq!(
            cb.state(31),
            BreakerState::Open {
                until_ns: 30 + 5_000_000
            }
        );
        assert!(!cb.admit(31));
        assert!(!cb.admit(5_000_029), "one ns before expiry: still open");
    }

    #[test]
    fn half_open_admits_exactly_the_probe_quota() {
        let pol = BreakerPolicy {
            half_open_probes: 2,
            probe_successes: 2,
            ..BreakerPolicy::default()
        };
        let mut cb = CircuitBreaker::new(pol);
        cb.trip(0);
        let open_end = pol.open_ns;
        assert_eq!(cb.state(open_end), BreakerState::HalfOpen);
        assert!(cb.admit(open_end), "probe 1");
        assert!(cb.admit(open_end), "probe 2");
        assert!(!cb.admit(open_end), "quota exhausted");
        assert!(!cb.on_success(open_end + 1), "one of two successes");
        assert!(cb.on_success(open_end + 2), "second success closes");
        assert_eq!(cb.state(open_end + 3), BreakerState::Closed);
        assert_eq!(cb.closes(), 1);
    }

    #[test]
    fn failed_probe_doubles_the_open_window_up_to_cap() {
        let pol = BreakerPolicy {
            open_ns: 1_000,
            open_cap_ns: 3_000,
            ..BreakerPolicy::default()
        };
        let mut cb = CircuitBreaker::new(pol);
        cb.trip(0);
        assert!(cb.admit(1_000), "first probe admitted");
        cb.on_failure(1_100);
        assert_eq!(
            cb.state(1_101),
            BreakerState::Open {
                until_ns: 1_100 + 2_000
            },
            "doubled"
        );
        assert!(cb.admit(3_100));
        cb.on_failure(3_200);
        assert_eq!(
            cb.state(3_201),
            BreakerState::Open {
                until_ns: 3_200 + 3_000
            },
            "capped"
        );
        // Closing resets the window to base.
        assert!(cb.admit(6_200));
        assert!(cb.on_success(6_300));
        cb.trip(10_000);
        assert_eq!(cb.state(10_001), BreakerState::Open { until_ns: 11_000 });
    }

    #[test]
    fn deterministic_probe_admission_replays_identically() {
        let run = || {
            let mut cb = CircuitBreaker::new(BreakerPolicy::default());
            let mut decisions = Vec::new();
            cb.trip(0);
            for t in (0..20_000_000).step_by(1_000_000) {
                let admitted = cb.admit(t);
                decisions.push((t, admitted));
                if admitted {
                    if t % 3_000_000 == 0 {
                        cb.on_failure(t + 1);
                    } else {
                        cb.on_success(t + 1);
                    }
                }
            }
            decisions
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn breaker_map_keys_per_tenant_node_and_trips_whole_nodes() {
        let mut map = BreakerMap::new(BreakerPolicy::default());
        assert!(map.get(1, 0).admit(0));
        assert!(map.get(2, 0).admit(0));
        assert!(map.get(1, 1).admit(0));
        map.trip_node(0, 100);
        assert!(!map.get(1, 0).admit(101), "tenant 1 on node 0 tripped");
        assert!(!map.get(2, 0).admit(101), "tenant 2 on node 0 tripped");
        assert!(map.get(1, 1).admit(101), "node 1 untouched");
        assert_eq!(map.total_trips(), 2);
        assert_eq!(map.total_closes(), 0);
    }

    #[test]
    #[should_panic(expected = "failure threshold must be > 0")]
    fn invalid_breaker_policy_rejected() {
        CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 0,
            ..BreakerPolicy::default()
        });
    }
}
