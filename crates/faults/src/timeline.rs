//! Per-node liveness derived from planned [`NodeFault`]s.
//!
//! A [`FaultPlan`] carries whole-node lifecycle faults as a flat list of
//! instants; schedulers want the derived questions — *is node `i` alive
//! at `t`? reachable at `t`? when does the next lifecycle event land?*
//! [`NodeTimeline`] answers them from one pass over the plans, so every
//! consumer (the survivable DAG executor, the serving DES) agrees on
//! what the same plan means.

use crate::plan::NodeFault;
use crate::FaultPlan;

/// Resolved per-node lifecycle: crash/rejoin instants and partition
/// windows, queryable by simulated time.
///
/// Restrictions keep the model unambiguous: at most one crash and one
/// rejoin per node (the rejoin must follow the crash), and partition
/// windows on one node must not overlap. A node is **alive** outside
/// `[crash, rejoin)` (or `[crash, ∞)` with no rejoin) and **reachable**
/// when alive and not inside a partition window.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeTimeline {
    crash: Vec<Option<u64>>,
    rejoin: Vec<Option<u64>>,
    partitions: Vec<Vec<(u64, u64)>>, // sorted, disjoint [start, end)
}

impl NodeTimeline {
    /// A timeline where all `nodes` stay up forever.
    pub fn new(nodes: usize) -> Self {
        NodeTimeline {
            crash: vec![None; nodes],
            rejoin: vec![None; nodes],
            partitions: vec![Vec::new(); nodes],
        }
    }

    /// Builds the timeline from one plan per node.
    ///
    /// # Panics
    /// Panics on the same malformed shapes as [`NodeTimeline::add`].
    pub fn from_plans(plans: &[FaultPlan]) -> Self {
        let mut tl = NodeTimeline::new(plans.len());
        for (node, plan) in plans.iter().enumerate() {
            for &f in plan.node_faults() {
                tl.add(node, f);
            }
        }
        tl
    }

    /// Nodes tracked.
    pub fn nodes(&self) -> usize {
        self.crash.len()
    }

    /// Records one lifecycle fault for `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range, on a second crash or rejoin
    /// for the same node, on a rejoin without (or not after) a crash,
    /// or on overlapping partition windows.
    pub fn add(&mut self, node: usize, fault: NodeFault) {
        assert!(node < self.crash.len(), "node {node} out of range");
        match fault {
            NodeFault::CrashAt(t) => {
                assert!(self.crash[node].is_none(), "node {node} crashes twice");
                self.crash[node] = Some(t);
            }
            NodeFault::RejoinAt(t) => {
                assert!(self.rejoin[node].is_none(), "node {node} rejoins twice");
                self.rejoin[node] = Some(t);
            }
            NodeFault::PartitionAt { at_ns, duration_ns } => {
                assert!(duration_ns > 0, "partition must have non-zero duration");
                let end = at_ns.saturating_add(duration_ns);
                let windows = &mut self.partitions[node];
                let pos = windows.partition_point(|&(s, _)| s < at_ns);
                let clear = windows.get(pos).is_none_or(|&(s, _)| s >= end)
                    && (pos == 0 || windows[pos - 1].1 <= at_ns);
                assert!(clear, "node {node} partition windows overlap");
                windows.insert(pos, (at_ns, end));
            }
        }
        if let (Some(c), Some(r)) = (self.crash[node], self.rejoin[node]) {
            assert!(r > c, "node {node} rejoin must follow its crash");
        }
    }

    /// The instant `node` crashes, if it ever does.
    pub fn crash_at(&self, node: usize) -> Option<u64> {
        self.crash[node]
    }

    /// The instant `node` rejoins after its crash, if planned.
    pub fn rejoin_at(&self, node: usize) -> Option<u64> {
        self.rejoin[node]
    }

    /// Whether `node` is up at `now_ns` (not between crash and rejoin).
    pub fn alive(&self, node: usize, now_ns: u64) -> bool {
        match self.crash[node] {
            Some(c) if now_ns >= c => self.rejoin[node].is_some_and(|r| now_ns >= r),
            _ => true,
        }
    }

    /// Whether `node` can exchange messages at `now_ns`: alive and not
    /// inside a partition window.
    pub fn reachable(&self, node: usize, now_ns: u64) -> bool {
        self.alive(node, now_ns)
            && !self.partitions[node]
                .iter()
                .any(|&(s, e)| now_ns >= s && now_ns < e)
    }

    /// The earliest instant `≥ now_ns` at which `node` is reachable, or
    /// `None` if it never is again (crashed with no rejoin).
    pub fn reachable_from(&self, node: usize, now_ns: u64) -> Option<u64> {
        let mut t = now_ns;
        // At most one crash window and finitely many partitions, each
        // pass strictly advances t, so this terminates.
        loop {
            if let Some(c) = self.crash[node] {
                if t >= c {
                    match self.rejoin[node] {
                        Some(r) if t < r => t = r,
                        Some(_) => {}
                        None => return None,
                    }
                }
            }
            match self.partitions[node]
                .iter()
                .find(|&&(s, e)| t >= s && t < e)
            {
                Some(&(_, e)) => t = e,
                None => return Some(t),
            }
        }
    }

    /// Crashes in ascending instant order (ties by node index):
    /// `(node, at_ns)`.
    pub fn crashes(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = self
            .crash
            .iter()
            .enumerate()
            .filter_map(|(n, c)| c.map(|t| (n, t)))
            .collect();
        out.sort_by_key(|&(n, t)| (t, n));
        out
    }

    /// True when no node ever crashes, partitions or rejoins — the
    /// timeline equivalent of [`FaultPlan::is_empty`].
    pub fn is_inert(&self) -> bool {
        self.crash.iter().all(Option::is_none)
            && self.rejoin.iter().all(Option::is_none)
            && self.partitions.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_timeline_keeps_everything_up() {
        let tl = NodeTimeline::new(3);
        assert!(tl.is_inert());
        for n in 0..3 {
            for t in [0, 1_000, u64::MAX] {
                assert!(tl.alive(n, t));
                assert!(tl.reachable(n, t));
                assert_eq!(tl.reachable_from(n, t), Some(t));
            }
        }
        assert!(tl.crashes().is_empty());
    }

    #[test]
    fn crash_without_rejoin_is_forever() {
        let mut tl = NodeTimeline::new(2);
        tl.add(1, NodeFault::CrashAt(5_000));
        assert!(!tl.is_inert());
        assert!(tl.alive(1, 4_999));
        assert!(!tl.alive(1, 5_000));
        assert!(!tl.reachable(1, u64::MAX));
        assert_eq!(tl.reachable_from(1, 6_000), None);
        assert!(tl.alive(0, 6_000), "other nodes unaffected");
        assert_eq!(tl.crashes(), vec![(1, 5_000)]);
        assert_eq!(tl.crash_at(1), Some(5_000));
    }

    #[test]
    fn rejoin_revives_the_node() {
        let mut tl = NodeTimeline::new(1);
        tl.add(0, NodeFault::CrashAt(1_000));
        tl.add(0, NodeFault::RejoinAt(9_000));
        assert!(tl.alive(0, 999));
        assert!(!tl.alive(0, 5_000));
        assert!(tl.alive(0, 9_000));
        assert_eq!(tl.reachable_from(0, 5_000), Some(9_000));
        assert_eq!(tl.rejoin_at(0), Some(9_000));
    }

    #[test]
    fn partitions_block_reachability_but_not_liveness() {
        let mut tl = NodeTimeline::new(1);
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 2_000,
                duration_ns: 1_000,
            },
        );
        assert!(tl.alive(0, 2_500));
        assert!(!tl.reachable(0, 2_500));
        assert!(tl.reachable(0, 1_999));
        assert!(tl.reachable(0, 3_000), "window end exclusive");
        assert_eq!(tl.reachable_from(0, 2_500), Some(3_000));
    }

    #[test]
    fn reachable_from_chains_partition_after_rejoin() {
        let mut tl = NodeTimeline::new(1);
        tl.add(0, NodeFault::CrashAt(1_000));
        tl.add(0, NodeFault::RejoinAt(4_000));
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 4_000,
                duration_ns: 500,
            },
        );
        assert_eq!(tl.reachable_from(0, 2_000), Some(4_500));
    }

    #[test]
    fn from_plans_reads_each_nodes_faults() {
        let plans = vec![
            FaultPlan::none(),
            FaultPlan::none().with_node_crash_at(7_000),
            FaultPlan::none().with_node_partition(1_000, 2_000),
        ];
        let tl = NodeTimeline::from_plans(&plans);
        assert_eq!(tl.nodes(), 3);
        assert!(tl.reachable(0, 8_000));
        assert!(!tl.alive(1, 8_000));
        assert!(!tl.reachable(2, 1_500));
        assert_eq!(tl.crashes(), vec![(1, 7_000)]);
    }

    #[test]
    fn crashes_sort_by_instant_then_node() {
        let mut tl = NodeTimeline::new(3);
        tl.add(2, NodeFault::CrashAt(100));
        tl.add(0, NodeFault::CrashAt(200));
        tl.add(1, NodeFault::CrashAt(100));
        assert_eq!(tl.crashes(), vec![(1, 100), (2, 100), (0, 200)]);
    }

    #[test]
    #[should_panic(expected = "crashes twice")]
    fn double_crash_rejected() {
        let mut tl = NodeTimeline::new(1);
        tl.add(0, NodeFault::CrashAt(1));
        tl.add(0, NodeFault::CrashAt(2));
    }

    #[test]
    #[should_panic(expected = "rejoin must follow its crash")]
    fn rejoin_before_crash_rejected() {
        let mut tl = NodeTimeline::new(1);
        tl.add(0, NodeFault::CrashAt(5_000));
        tl.add(0, NodeFault::RejoinAt(5_000));
    }

    #[test]
    #[should_panic(expected = "partition windows overlap")]
    fn overlapping_partitions_rejected() {
        let mut tl = NodeTimeline::new(1);
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 1_000,
                duration_ns: 1_000,
            },
        );
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 1_500,
                duration_ns: 1_000,
            },
        );
    }

    #[test]
    fn adjacent_partitions_accepted() {
        let mut tl = NodeTimeline::new(1);
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 2_000,
                duration_ns: 1_000,
            },
        );
        tl.add(
            0,
            NodeFault::PartitionAt {
                at_ns: 1_000,
                duration_ns: 1_000,
            },
        );
        assert!(!tl.reachable(0, 1_500));
        assert!(!tl.reachable(0, 2_500));
        assert_eq!(tl.reachable_from(0, 1_000), Some(3_000));
    }
}
