//! Offline drop-in subset of the [rayon](https://docs.rs/rayon) API,
//! backed by a persistent work-stealing executor.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the parallel-iterator surface it uses: `slice.par_iter()`
//! followed by `map`, `filter_map`, `map_init`, then `collect()` or
//! rayon's two-argument `reduce(identity, op)`, plus `par_chunks()` and
//! `join()`.
//!
//! # Execution model
//!
//! Unlike the previous shim (fresh scoped threads + static equal chunks
//! per call), this version keeps one lazily-initialized global pool of
//! worker threads for the life of the process:
//!
//! * each worker owns a deque — the owner pushes/pops at the back
//!   (LIFO, cache-hot), thieves steal the front *half* (FIFO, oldest =
//!   biggest ranges first);
//! * non-worker callers inject tasks through a shared injector queue and
//!   then participate in stealing themselves while they wait, so the
//!   calling thread is never idle;
//! * idle workers park on a condvar and are woken when work is pushed;
//! * a parallel run hands the *whole* index range to the calling thread,
//!   which splits off the upper half on demand — only while some worker
//!   is hungry (parked or actively seeking) — down to a minimum grain of
//!   `len / (workers * 32)` items. Uniform workloads therefore pay almost
//!   no scheduling overhead, while a single heavy subtree keeps getting
//!   subdivided and redistributed instead of serializing its static
//!   chunk.
//!
//! Results are always written back by input index and reductions fold in
//! input order, so every combinator is deterministic and **bit-identical
//! to sequential execution** regardless of how work was stolen.
//!
//! On a single-core host (or with `RAYON_NUM_THREADS=1`) no pool is
//! spawned at all and every combinator degrades to a plain sequential
//! loop on the caller — same results, zero overhead.
//!
//! Executor behaviour is observable through [`executor_stats`]: runs,
//! tasks, steals, splits, park events/time, and the adaptive grain sizes
//! chosen, ready to be re-exported through the `madness-trace` Recorder.

#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Everything user code is expected to `use rayon::prelude::*;` for.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

// ---------------------------------------------------------------------------
// Executor statistics
// ---------------------------------------------------------------------------

/// Monotonic counters describing executor activity since process start.
///
/// Snapshot them with [`executor_stats`]; compute deltas across a region
/// of interest to attribute work (e.g. per benchmark phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker threads in the global pool (0 = inline/sequential mode).
    pub workers: u64,
    /// Top-level parallel runs started (including inline ones).
    pub runs: u64,
    /// Runs executed inline on the caller (no pool, or trivial size).
    pub inline_runs: u64,
    /// Queued tasks executed (ranges + join jobs), excluding the
    /// caller-executed root range of each run.
    pub tasks: u64,
    /// Tasks taken from another worker's deque or the injector.
    pub steals: u64,
    /// Range splits performed on demand (each creates one new task).
    pub splits: u64,
    /// Times a worker parked because no work was available.
    pub parks: u64,
    /// Total nanoseconds workers spent parked.
    pub parked_ns: u64,
    /// `join()` calls that reached the pool.
    pub joins: u64,
    /// Grain (min items per bite) chosen by the most recent run.
    pub grain_last: u64,
    /// Smallest grain any run has chosen (0 until the first run).
    pub grain_min: u64,
    /// Largest grain any run has chosen.
    pub grain_max: u64,
}

struct Stats {
    runs: AtomicU64,
    inline_runs: AtomicU64,
    tasks: AtomicU64,
    steals: AtomicU64,
    splits: AtomicU64,
    parks: AtomicU64,
    parked_ns: AtomicU64,
    joins: AtomicU64,
    grain_last: AtomicU64,
    grain_min: AtomicU64,
    grain_max: AtomicU64,
}

static STATS: Stats = Stats {
    runs: AtomicU64::new(0),
    inline_runs: AtomicU64::new(0),
    tasks: AtomicU64::new(0),
    steals: AtomicU64::new(0),
    splits: AtomicU64::new(0),
    parks: AtomicU64::new(0),
    parked_ns: AtomicU64::new(0),
    joins: AtomicU64::new(0),
    grain_last: AtomicU64::new(0),
    grain_min: AtomicU64::new(u64::MAX),
    grain_max: AtomicU64::new(0),
};

/// Snapshots the executor's monotonic counters.
pub fn executor_stats() -> ExecutorStats {
    let grain_min = STATS.grain_min.load(Ordering::Relaxed);
    ExecutorStats {
        workers: POOL
            .get()
            .and_then(|p| p.as_ref())
            .map_or(0, |p| p.workers as u64),
        runs: STATS.runs.load(Ordering::Relaxed),
        inline_runs: STATS.inline_runs.load(Ordering::Relaxed),
        tasks: STATS.tasks.load(Ordering::Relaxed),
        steals: STATS.steals.load(Ordering::Relaxed),
        splits: STATS.splits.load(Ordering::Relaxed),
        parks: STATS.parks.load(Ordering::Relaxed),
        parked_ns: STATS.parked_ns.load(Ordering::Relaxed),
        joins: STATS.joins.load(Ordering::Relaxed),
        grain_last: STATS.grain_last.load(Ordering::Relaxed),
        grain_min: if grain_min == u64::MAX { 0 } else { grain_min },
        grain_max: STATS.grain_max.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Pool plumbing
// ---------------------------------------------------------------------------

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Completion flag for a run or a stolen `join` job.
///
/// A pure atomic is sufficient: waiters spin-steal on [`Latch::probe`]
/// rather than blocking on a condvar, and the setter performs no access
/// after its release store, so a waiter that observes `true` may free
/// the latch immediately without racing the setter.
struct Latch {
    done: AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: AtomicBool::new(false),
        }
    }
    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Shared state of one top-level parallel run.
struct RunCore {
    /// The run body, called with disjoint `[start, end)` index ranges.
    ///
    /// The `'static` is a lie told by [`parallel_run`]: the reference
    /// points into its caller's stack frame. Soundness argument: every
    /// task holding an `Arc<RunCore>` is counted in `remaining`, and
    /// `parallel_run` does not return before `remaining` hits zero
    /// (observed through `latch`), so the borrow can never be used after
    /// the frame unwinds.
    exec: &'static (dyn Fn(usize, usize) + Sync),
    /// Outstanding range tasks (the root range counts as one).
    remaining: AtomicUsize,
    /// Minimum items per execution bite; ranges never split below this.
    grain: usize,
    /// First panic raised by any range, rethrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    latch: Latch,
}

impl RunCore {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Marks one task complete; sets the latch when it was the last.
    fn finish(&self) {
        // AcqRel RMW chain: the final decrement synchronizes with every
        // earlier worker's decrement, so the Release store in `set`
        // publishes *all* workers' writes to the Acquire prober.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }
}

/// Type-erased pointer to a stack-allocated `join` job.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the StackJob it
// points at outlives it (the joining caller blocks on the job's latch
// before its frame can unwind).
unsafe impl Send for JobRef {}

enum Task {
    /// An index range of a parallel run.
    Range(Arc<RunCore>, usize, usize),
    /// The deferred half of a `join`.
    Job(JobRef),
}

struct Pool {
    workers: usize,
    /// Per-worker deques: owner pushes/pops back, thieves drain front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Entry queue for tasks pushed by non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Approximate count of queued tasks (may transiently overcount
    /// while a thief relocates its surplus; never undercounts).
    queued: AtomicUsize,
    /// Workers currently parked on `sleep_cv`.
    parked: AtomicUsize,
    /// Workers actively looking for work after a failed first pass.
    seeking: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Rotates the first victim so thieves spread across deques.
    steal_rot: AtomicUsize,
}

static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();

/// Worker-count override; 0 means "auto" (env var, then hardware).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the executor's worker-thread count.
///
/// Only effective before the first parallel call creates the global
/// pool; later calls are ignored. Values `< 2` force inline
/// (sequential) execution.
pub fn set_worker_threads(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Release);
}

fn configured_workers() -> usize {
    let o = WORKER_OVERRIDE.load(Ordering::Acquire);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count the executor is configured to use: the live pool's size
/// once it exists, otherwise what the pool *will* be sized to when the
/// first parallel call creates it (override, then `RAYON_NUM_THREADS`,
/// then `available_parallelism`). Never creates the pool.
///
/// Unlike [`executor_stats`]`().workers` — which reports `0` until the
/// first parallel run — this is safe to size companion thread pools from
/// at any point in the process lifetime. Values `< 2` mean the executor
/// will run inline.
pub fn configured_worker_threads() -> usize {
    match POOL.get() {
        Some(Some(pool)) => pool.workers,
        // Pool creation already decided against spawning (inline mode).
        Some(None) => 1,
        None => configured_workers(),
    }
}

/// Eagerly creates the global worker pool, which is otherwise created
/// lazily by the first parallel call. Returns the live worker count
/// (`0` = inline mode: single-core host or `RAYON_NUM_THREADS < 2`).
///
/// Call this before wall-clock benchmarking so thread spawning is not
/// charged to the first timed region — and so `executor_stats().workers`
/// reflects the real pool instead of the pre-first-run `0`.
pub fn initialize() -> usize {
    pool_get().map_or(0, |p| p.workers)
}

fn pool_get() -> Option<&'static Pool> {
    *POOL.get_or_init(|| {
        let n = configured_workers();
        if n < 2 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            workers: n,
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            seeking: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            steal_rot: AtomicUsize::new(0),
        }));
        for i in 0..n {
            std::thread::Builder::new()
                .name(format!("madness-rayon-{i}"))
                .spawn(move || worker_main(pool, i))
                .expect("failed to spawn executor worker");
        }
        Some(pool)
    })
}

thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn worker_main(pool: &'static Pool, index: usize) {
    WORKER_INDEX.set(Some(index));
    loop {
        if let Some(task) = pool.find_task(Some(index)) {
            pool.execute(task);
            continue;
        }
        // Advertise that we are hungry so busy workers start splitting,
        // then look once more before parking.
        pool.seeking.fetch_add(1, Ordering::AcqRel);
        let second = pool.find_task(Some(index));
        pool.seeking.fetch_sub(1, Ordering::AcqRel);
        match second {
            Some(task) => pool.execute(task),
            None => pool.park(),
        }
    }
}

impl Pool {
    /// True when someone could use more tasks right now.
    fn hungry(&self) -> bool {
        self.parked.load(Ordering::Acquire) > 0 || self.seeking.load(Ordering::Acquire) > 0
    }

    /// Pushes a task onto the current thread's deque (workers) or the
    /// injector (everyone else) and wakes a parked worker if any.
    fn push_task(&self, task: Task) {
        match WORKER_INDEX.get() {
            Some(i) => lock(&self.deques[i]).push_back(task),
            None => lock(&self.injector).push_back(task),
        }
        // Increment *before* the parked check: a parker re-reads
        // `queued` under `sleep_lock` before sleeping, so it either sees
        // this task or we see it parked and take the lock to notify.
        self.queued.fetch_add(1, Ordering::AcqRel);
        if self.parked.load(Ordering::Acquire) > 0 {
            let _g = lock(&self.sleep_lock);
            self.sleep_cv.notify_one();
        }
    }

    /// Finds a task: own deque back, then injector, then steal-half
    /// from another worker's deque (rotating the first victim).
    fn find_task(&self, own: Option<usize>) -> Option<Task> {
        if let Some(i) = own {
            let task = lock(&self.deques[i]).pop_back();
            if let Some(task) = task {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(task);
            }
        }
        if let Some(task) = self.steal_half(&self.injector, own) {
            return Some(task);
        }
        let nd = self.deques.len();
        let start = self.steal_rot.fetch_add(1, Ordering::Relaxed);
        for off in 0..nd {
            let v = (start + off) % nd;
            if Some(v) == own {
                continue;
            }
            if let Some(task) = self.steal_half(&self.deques[v], own) {
                STATS.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    /// Takes the front half of `victim`; returns the first task and
    /// relocates the rest to the thief's own queue.
    fn steal_half(&self, victim: &Mutex<VecDeque<Task>>, own: Option<usize>) -> Option<Task> {
        let mut surplus = Vec::new();
        let task = {
            let mut q = lock(victim);
            let n = q.len();
            if n == 0 {
                return None;
            }
            let take = n.div_ceil(2);
            let task = q.pop_front().expect("non-empty");
            surplus.extend((1..take).filter_map(|_| q.pop_front()));
            task
        };
        self.queued.fetch_sub(1, Ordering::AcqRel);
        if !surplus.is_empty() {
            let dest = match own {
                Some(i) => &self.deques[i],
                None => &self.injector,
            };
            {
                let mut q = lock(dest);
                q.extend(surplus);
            }
            // The relocated tasks are stealable again: wake helpers.
            if self.parked.load(Ordering::Acquire) > 0 {
                let _g = lock(&self.sleep_lock);
                self.sleep_cv.notify_one();
            }
        }
        Some(task)
    }

    fn execute(&self, task: Task) {
        STATS.tasks.fetch_add(1, Ordering::Relaxed);
        match task {
            Task::Range(core, start, end) => run_range(Some(self), &core, start, end),
            // SAFETY: the job's owner is blocked on its latch, so the
            // StackJob behind `data` is alive; tasks are executed once.
            Task::Job(job) => unsafe { (job.execute)(job.data) },
        }
    }

    /// Parks until work is pushed (with a timeout as a lost-wakeup
    /// backstop).
    fn park(&self) {
        STATS.parks.fetch_add(1, Ordering::Relaxed);
        self.parked.fetch_add(1, Ordering::AcqRel);
        let t0 = Instant::now();
        {
            let g = lock(&self.sleep_lock);
            if self.queued.load(Ordering::Acquire) == 0 {
                let _ = self
                    .sleep_cv
                    .wait_timeout(g, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.parked.fetch_sub(1, Ordering::AcqRel);
        STATS
            .parked_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Waits for `latch`, executing other tasks instead of blocking.
    fn wait_latch(&self, latch: &Latch) {
        let own = WORKER_INDEX.get();
        let mut idle = 0u32;
        while !latch.probe() {
            if let Some(task) = self.find_task(own) {
                idle = 0;
                self.execute(task);
            } else {
                idle += 1;
                if idle < 64 {
                    std::hint::spin_loop();
                } else if idle < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Removes the most recently pushed occurrence of `data` from the
    /// current thread's queue (a `join` fast path: run it inline).
    fn try_unpush(&self, data: *const ()) -> bool {
        let q = match WORKER_INDEX.get() {
            Some(i) => &self.deques[i],
            None => &self.injector,
        };
        let removed = {
            let mut q = lock(q);
            match q
                .iter()
                .rposition(|t| matches!(t, Task::Job(j) if std::ptr::eq(j.data, data)))
            {
                Some(pos) => {
                    q.remove(pos);
                    true
                }
                None => false,
            }
        };
        if removed {
            self.queued.fetch_sub(1, Ordering::AcqRel);
        }
        removed
    }
}

/// Executes `[start, end)` of a run, splitting off the upper half
/// whenever another thread is hungry and more than one grain remains.
fn run_range(pool: Option<&Pool>, core: &Arc<RunCore>, start: usize, end: usize) {
    let mut lo = start;
    let mut hi = end;
    let result = catch_unwind(AssertUnwindSafe(|| {
        while lo < hi {
            if hi - lo > core.grain {
                if let Some(p) = pool {
                    if p.hungry() {
                        let mid = lo + (hi - lo) / 2;
                        core.remaining.fetch_add(1, Ordering::AcqRel);
                        STATS.splits.fetch_add(1, Ordering::Relaxed);
                        p.push_task(Task::Range(Arc::clone(core), mid, hi));
                        hi = mid;
                        continue;
                    }
                }
            }
            let bite = core.grain.min(hi - lo);
            (core.exec)(lo, lo + bite);
            lo += bite;
        }
    }));
    if let Err(payload) = result {
        core.record_panic(payload);
    }
    core.finish();
}

/// Runs `exec` over the index range `[0, n)` in parallel, blocking
/// until every index has been processed. Panics from `exec` are
/// rethrown here (first one wins).
fn parallel_run(n: usize, exec: &(dyn Fn(usize, usize) + Sync)) {
    if n == 0 {
        return;
    }
    STATS.runs.fetch_add(1, Ordering::Relaxed);
    let pool = pool_get();
    let (Some(pool), true) = (pool, n > 1) else {
        STATS.inline_runs.fetch_add(1, Ordering::Relaxed);
        exec(0, n);
        return;
    };
    let grain = (n / (pool.workers * 32)).max(1);
    STATS.grain_last.store(grain as u64, Ordering::Relaxed);
    STATS.grain_min.fetch_min(grain as u64, Ordering::Relaxed);
    STATS.grain_max.fetch_max(grain as u64, Ordering::Relaxed);
    // SAFETY: the 'static is erased only for storage inside RunCore;
    // this frame blocks on `core.latch` until `remaining == 0`, i.e.
    // until no task referencing `exec` exists anywhere.
    let exec_static: &'static (dyn Fn(usize, usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), &'static (dyn Fn(usize, usize) + Sync)>(
            exec,
        )
    };
    let core = Arc::new(RunCore {
        exec: exec_static,
        remaining: AtomicUsize::new(1),
        grain,
        panic: Mutex::new(None),
        latch: Latch::new(),
    });
    // The caller keeps the whole range and splits on demand; it then
    // helps drain queues until the run completes.
    run_range(Some(pool), &core, 0, n);
    pool.wait_latch(&core.latch);
    let payload = lock(&core.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A `join` closure parked on its owner's stack until executed.
struct StackJob<R, F: FnOnce() -> R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: Latch,
}

impl<R, F: FnOnce() -> R> StackJob<R, F> {
    fn new(f: F) -> Self {
        StackJob {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(JobResult::Pending),
            latch: Latch::new(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: execute_stack_job::<R, F>,
        }
    }
}

/// Runs a [`StackJob`] exactly once and publishes its result.
///
/// # Safety
/// `data` must point to a live `StackJob<R, F>` that has not been
/// executed yet, and no other thread may access its cells concurrently
/// (guaranteed by single task ownership + the latch protocol).
unsafe fn execute_stack_job<R, F: FnOnce() -> R>(data: *const ()) {
    let job = unsafe { &*(data as *const StackJob<R, F>) };
    let f = unsafe { &mut *job.f.get() }
        .take()
        .expect("join job executed twice");
    let outcome = match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => JobResult::Ok(r),
        Err(p) => JobResult::Panicked(p),
    };
    unsafe { *job.result.get() = outcome };
    job.latch.set();
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// `b` is offered to the pool while the calling thread runs `a`; if no
/// worker took it by then, the caller runs it inline (classic
/// work-stealing `join`). Panics are propagated after *both* closures
/// have finished — `a`'s panic takes precedence.
pub fn join<A, RA, B, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    RA: Send,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let Some(pool) = pool_get() else {
        return (a(), b());
    };
    STATS.joins.fetch_add(1, Ordering::Relaxed);
    let job = StackJob::new(b);
    let job_ref = job.as_job_ref();
    pool.push_task(Task::Job(job_ref));
    let ra = catch_unwind(AssertUnwindSafe(a));
    if pool.try_unpush(job_ref.data) {
        // Nobody stole b: run it on this thread.
        // SAFETY: unpush succeeded, so we hold the only reference to the
        // pending job and it has not run.
        unsafe { (job_ref.execute)(job_ref.data) };
    } else {
        // b is queued elsewhere or already running: help out until done.
        pool.wait_latch(&job.latch);
    }
    let rb = job.result.into_inner();
    match ra {
        Err(pa) => resume_unwind(pa),
        Ok(ra) => match rb {
            JobResult::Ok(rb) => (ra, rb),
            JobResult::Panicked(pb) => resume_unwind(pb),
            JobResult::Pending => unreachable!("join job finished without a result"),
        },
    }
}

// ---------------------------------------------------------------------------
// Ordered collection helpers
// ---------------------------------------------------------------------------

/// A raw pointer blessed for cross-thread use.
struct SendPtr<T>(*mut T);

// Manual impls: the derive would demand `T: Clone`/`T: Copy`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: used only to write disjoint indices of one allocation from
// tasks whose lifetimes are bounded by the owning `parallel_run` call.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Evaluates `g(i)` for every `i < n` in parallel and returns the
/// results in index order.
fn par_collect_indexed<R, G>(n: usize, g: G) -> Vec<R>
where
    R: Send,
    G: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let base = SendPtr(slots.as_mut_ptr());
    parallel_run(n, &move |s, e| {
        // Bind the wrapper itself so closure capture takes the Sync
        // `SendPtr`, not the raw pointer field (2021 disjoint capture).
        let base = base;
        for i in s..e {
            let val = g(i);
            // SAFETY: tasks cover disjoint index ranges, so each slot is
            // written exactly once; the overwritten value is `None`.
            unsafe { base.0.add(i).write(Some(val)) };
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every index filled"))
        .collect()
}

// ---------------------------------------------------------------------------
// Parallel-iterator surface
// ---------------------------------------------------------------------------

/// `collection.par_iter()` — entry point matching rayon's trait of the
/// same name for `&Vec<T>` / `&[T]`.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Sync + 'a;
    /// Starts a parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `slice.par_chunks(n)` — rayon's parallel chunk iterator.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `chunk_size` items
    /// (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            items: self,
            chunk_size,
        }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Maps each item through `f`, keeping `Some` results (in order).
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }

    /// rayon's `map_init`: each execution bite builds one scratch value
    /// with `init` and reuses it across the items it processes.
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParMapInit<'a, T, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects the mapped items, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        par_collect_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }

    /// rayon's two-argument reduce: folds the mapped items with `op`,
    /// starting from `identity()`, in input order (bit-identical to a
    /// sequential fold).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let items = self.items;
        let f = &self.f;
        par_collect_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .fold(identity(), op)
    }
}

/// Result of [`ParIter::filter_map`].
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParFilterMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Collects the `Some` results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        par_collect_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Flattens `Some(iterable)` results into their items, in order.
    pub fn flatten(self) -> ParFlatten<'a, T, F>
    where
        R: IntoIterator,
    {
        ParFlatten {
            items: self.items,
            f: self.f,
        }
    }
}

/// Result of [`ParFilterMap::flatten`].
pub struct ParFlatten<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParFlatten<'a, T, F>
where
    T: Sync,
    R: IntoIterator + Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Collects the flattened items, preserving input order.
    pub fn collect<C: FromIterator<R::Item>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        par_collect_indexed(items.len(), |i| f(&items[i]))
            .into_iter()
            .flatten()
            .flatten()
            .collect()
    }
}

/// Result of [`ParIter::map_init`].
pub struct ParMapInit<'a, T, I, F> {
    items: &'a [T],
    init: I,
    f: F,
}

impl<'a, T, S, R, I, F> ParMapInit<'a, T, I, F>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    /// Collects the mapped items, preserving input order. The scratch
    /// state is created once per contiguous execution bite (≥ grain
    /// items) and reused across that bite, like rayon's per-thread init.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.items;
        let init = &self.init;
        let f = &self.f;
        let n = items.len();
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        let base = SendPtr(slots.as_mut_ptr());
        parallel_run(n, &move |s, e| {
            let base = base;
            let mut state = init();
            for (i, item) in items.iter().enumerate().take(e).skip(s) {
                let val = f(&mut state, item);
                // SAFETY: disjoint ranges; each slot written exactly
                // once over a `None`.
                unsafe { base.0.add(i).write(Some(val)) };
            }
        });
        slots
            .into_iter()
            .map(|o| o.expect("every index filled"))
            .collect()
    }
}

/// Result of [`ParallelSlice::par_chunks`].
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps each chunk through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap {
            items: self.items,
            chunk_size: self.chunk_size,
            f,
        }
    }
}

/// Result of [`ParChunks::map`].
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk_size: usize,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    fn chunk(&self, ci: usize) -> &'a [T] {
        let lo = ci * self.chunk_size;
        let hi = (lo + self.chunk_size).min(self.items.len());
        &self.items[lo..hi]
    }

    /// Collects per-chunk results, preserving chunk order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len().div_ceil(self.chunk_size);
        par_collect_indexed(n, |ci| (self.f)(self.chunk(ci)))
            .into_iter()
            .collect()
    }

    /// Folds per-chunk results with `op` in chunk order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let n = self.items.len().div_ceil(self.chunk_size);
        par_collect_indexed(n, |ci| (self.f)(self.chunk(ci)))
            .into_iter()
            .fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Every test forces a real 4-worker pool (the CI container may
    /// report a single core, which would otherwise mean inline mode).
    fn setup() {
        set_worker_threads(4);
        assert!(pool_get().is_some(), "test pool must exist");
    }

    #[test]
    fn map_collect_preserves_order() {
        setup();
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_keeps_order() {
        setup();
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v
            .par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(*x))
            .collect();
        assert_eq!(out, (0..1000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential() {
        setup();
        let v: Vec<u64> = (1..=100).collect();
        let sum = v
            .par_iter()
            .map(|x| vec![*x])
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(sum, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_within_chunk() {
        setup();
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = v
            .par_iter()
            .map_init(
                || 0u64,
                |acc, x| {
                    *acc += 1;
                    *x
                },
            )
            .collect();
        assert_eq!(out, v);
    }

    #[test]
    fn nested_parallelism_terminates() {
        setup();
        fn rec(depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            let kids: Vec<usize> = (0..4).collect();
            kids.par_iter()
                .map(|_| rec(depth - 1))
                .reduce(|| 0, |a, b| a + b)
        }
        assert_eq!(rec(5), 4u64.pow(5));
    }

    /// Regression for the old shim's thread-budget bug: its `fetch_add`
    /// claim admitted `prev + want > cap` whenever `prev < cap`, so
    /// nested `par_iter` could spawn more threads than cores. The pool
    /// executes everything on a *fixed* set of worker threads: nested
    /// parallelism must never observe more than `workers` distinct
    /// pool threads, nor more than `workers` concurrent executions on
    /// pool threads.
    #[test]
    fn nested_calls_never_oversubscribe_pool() {
        setup();
        static CUR: AtomicUsize = AtomicUsize::new(0);
        static HIGH: AtomicUsize = AtomicUsize::new(0);
        let names = Mutex::new(std::collections::BTreeSet::new());

        fn spin(units: u64) -> u64 {
            let mut acc = 0u64;
            for i in 0..units * 2000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        }

        thread_local! {
            // Re-entrancy depth: a worker waiting inside a nested run
            // may steal and execute another of our tasks on the same
            // thread; only the outermost entry counts as "this thread
            // is busy".
            static DEPTH: Cell<usize> = const { Cell::new(0) };
        }

        let rec = |depth: usize| {
            fn go(depth: usize, names: &Mutex<std::collections::BTreeSet<String>>) -> u64 {
                let on_worker = WORKER_INDEX.get().is_some();
                let outermost = on_worker && DEPTH.with(|d| d.replace(d.get() + 1)) == 0;
                if outermost {
                    let c = CUR.fetch_add(1, Ordering::SeqCst) + 1;
                    HIGH.fetch_max(c, Ordering::SeqCst);
                    if let Some(name) = std::thread::current().name() {
                        names.lock().unwrap().insert(name.to_string());
                    }
                }
                let kids: Vec<u64> = (0..4).collect();
                let out = kids
                    .par_iter()
                    .map(|k| {
                        if depth == 0 {
                            spin(*k + 1)
                        } else {
                            go(depth - 1, names)
                        }
                    })
                    .reduce(|| 0, |a, b| a.wrapping_add(b));
                if on_worker {
                    DEPTH.with(|d| d.set(d.get() - 1));
                }
                if outermost {
                    CUR.fetch_sub(1, Ordering::SeqCst);
                }
                out
            }
            go(depth, &names)
        };
        let _ = rec(4);
        let workers = executor_stats().workers as usize;
        assert!(workers >= 4);
        let distinct = names.lock().unwrap().len();
        assert!(
            distinct <= workers,
            "saw {distinct} distinct pool threads, pool has {workers}"
        );
        assert!(
            HIGH.load(Ordering::SeqCst) <= workers,
            "worker-side concurrency {} exceeded pool size {}",
            HIGH.load(Ordering::SeqCst),
            workers
        );
    }

    #[test]
    fn skewed_costs_preserve_order_and_values() {
        setup();
        // Adversarial skew: item i costs ~ (i % 37)^3 spins, so static
        // equal chunking would leave one chunk dominant. Results must
        // still come back in input order with exact values.
        let v: Vec<u64> = (0..4096).collect();
        let f = |x: &u64| {
            let mut acc = *x;
            let spins = (x % 37) * (x % 37) * (x % 37);
            for i in 0..spins {
                acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
            }
            acc
        };
        let par: Vec<u64> = v.par_iter().map(f).collect();
        let seq: Vec<u64> = v.iter().map(f).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn float_reduce_is_bit_identical_to_sequential() {
        setup();
        // Non-associative float op: any reordering changes the bits.
        let v: Vec<f64> = (0..2000).map(|i| (i as f64).sin() * 1e3).collect();
        let par = v
            .par_iter()
            .map(|x| x / 3.0)
            .reduce(|| 0.0, |a, b| a * 0.5 + b);
        let seq = v.iter().map(|x| x / 3.0).fold(0.0, |a, b| a * 0.5 + b);
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        setup();
        let v: Vec<u64> = (0..1003).collect();
        for size in [1, 7, 128, 1003, 5000] {
            let par: Vec<u64> = v.par_chunks(size).map(|c| c.iter().sum()).collect();
            let seq: Vec<u64> = v.chunks(size).map(|c| c.iter().sum()).collect();
            assert_eq!(par, seq, "chunk size {size}");
        }
    }

    #[test]
    fn join_runs_both_closures() {
        setup();
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        setup();
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_propagates_panic_from_b() {
        setup();
        let caught = std::panic::catch_unwind(|| {
            join(|| 1, || -> u64 { panic!("b blew up") });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn join_panic_in_a_still_waits_for_b() {
        setup();
        let b_ran = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            join(
                || -> u64 { panic!("a blew up") },
                || b_ran.fetch_add(1, Ordering::SeqCst),
            );
        }));
        assert!(caught.is_err());
        assert_eq!(b_ran.load(Ordering::SeqCst), 1, "b must complete");
    }

    #[test]
    fn panic_in_map_propagates_once() {
        setup();
        let v: Vec<u64> = (0..512).collect();
        let caught = std::panic::catch_unwind(|| {
            let _: Vec<u64> = v
                .par_iter()
                .map(|x| if *x == 300 { panic!("item 300") } else { *x })
                .collect();
        });
        assert!(caught.is_err());
        // The executor must still be usable afterwards.
        let ok: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(ok.len(), 512);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        setup();
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![41u64];
        let out: Vec<u64> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn stats_are_monotone_and_populated() {
        setup();
        let before = executor_stats();
        let v: Vec<u64> = (0..10_000).collect();
        let _: Vec<u64> = v.par_iter().map(|x| x.wrapping_mul(3)).collect();
        let after = executor_stats();
        assert!(after.runs > before.runs);
        assert!(after.grain_last >= 1);
        assert!(after.grain_min >= 1);
        assert!(after.grain_max >= after.grain_min);
        assert!(after.tasks >= before.tasks);
    }
}
