//! Offline drop-in subset of the [rayon](https://docs.rs/rayon) API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* parallel-iterator surface it uses:
//! `slice.par_iter()` followed by `map`, `filter_map`, `map_init`, then
//! `collect()` or rayon's two-argument `reduce(identity, op)`.
//!
//! Work is executed on scoped `std` threads, chunked across the
//! available cores. A global in-flight budget keeps recursive callers
//! (e.g. tree projection, which calls `par_iter` from inside a parallel
//! job) from spawning an unbounded number of threads: once the budget is
//! exhausted, inner calls degrade to sequential execution on the calling
//! thread. Results are always concatenated in input order, so the
//! output is deterministic and identical to sequential execution.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything user code is expected to `use rayon::prelude::*;` for.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Global count of worker threads currently spawned by this shim.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items`, splitting into per-thread chunks when the
/// thread budget allows, and returns the per-item results in order.
fn run_chunked<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let cap = max_workers();
    let want = items.len().min(cap).saturating_sub(1);
    // Parallelism budget: claim extra worker slots if any are free.
    let claimed = if want > 0 {
        let prev = ACTIVE_WORKERS.fetch_add(want, Ordering::AcqRel);
        if prev >= cap {
            ACTIVE_WORKERS.fetch_sub(want, Ordering::AcqRel);
            0
        } else {
            want
        }
    } else {
        0
    };
    if claimed == 0 {
        return items.iter().map(f).collect();
    }
    let threads = claimed + 1;
    let chunk = items.len().div_ceil(threads);
    let out = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    });
    ACTIVE_WORKERS.fetch_sub(claimed, Ordering::AcqRel);
    out
}

/// `collection.par_iter()` — entry point matching rayon's trait of the
/// same name for `&Vec<T>` / `&[T]`.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Sync + 'a;
    /// Starts a parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Maps each item through `f`, keeping `Some` results (in order).
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }

    /// rayon's `map_init`: each worker thread builds one scratch value
    /// with `init` and reuses it across the items it processes.
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParMapInit<'a, T, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects the mapped items, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked(self.items, &self.f).into_iter().collect()
    }

    /// rayon's two-argument reduce: folds the mapped items with `op`,
    /// starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        run_chunked(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Result of [`ParIter::filter_map`].
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParFilterMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Collects the `Some` results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked(self.items, &self.f)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Flattens `Some(iterable)` results into their items, in order.
    pub fn flatten(self) -> ParFlatten<'a, T, F>
    where
        R: IntoIterator,
    {
        ParFlatten {
            items: self.items,
            f: self.f,
        }
    }
}

/// Result of [`ParFilterMap::flatten`].
pub struct ParFlatten<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParFlatten<'a, T, F>
where
    T: Sync,
    R: IntoIterator + Send,
    F: Fn(&'a T) -> Option<R> + Sync,
{
    /// Collects the flattened items, preserving input order.
    pub fn collect<C: FromIterator<R::Item>>(self) -> C {
        run_chunked(self.items, &self.f)
            .into_iter()
            .flatten()
            .flatten()
            .collect()
    }
}

/// Result of [`ParIter::map_init`].
pub struct ParMapInit<'a, T, I, F> {
    items: &'a [T],
    init: I,
    f: F,
}

impl<'a, T, S, R, I, F> ParMapInit<'a, T, I, F>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    /// Collects the mapped items, preserving input order. The scratch
    /// state is created once per chunk (= per worker thread).
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let init = &self.init;
        let f = &self.f;
        // One scratch per contiguous chunk: reuse it across that chunk's
        // items, exactly like rayon's per-thread init.
        let cap = max_workers().max(1);
        let chunk = self.items.len().div_ceil(cap).max(1);
        let per_chunk = move |c: &'a [T]| {
            let mut state = init();
            c.iter().map(|t| f(&mut state, t)).collect::<Vec<R>>()
        };
        let chunks: Vec<&'a [T]> = self.items.chunks(chunk).collect();
        run_chunked(&chunks, |c| per_chunk(c))
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v
            .par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(*x))
            .collect();
        assert_eq!(out, (0..1000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_sequential() {
        let v: Vec<u64> = (1..=100).collect();
        let sum = v
            .par_iter()
            .map(|x| vec![*x])
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(sum, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_state_within_chunk() {
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = v
            .par_iter()
            .map_init(
                || 0u64,
                |acc, x| {
                    *acc += 1;
                    *x
                },
            )
            .collect();
        assert_eq!(out, v);
    }

    #[test]
    fn nested_parallelism_terminates() {
        fn rec(depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            let kids: Vec<usize> = (0..4).collect();
            kids.par_iter()
                .map(|_| rec(depth - 1))
                .reduce(|| 0, |a, b| a + b)
        }
        assert_eq!(rec(5), 4u64.pow(5));
    }
}
