//! Property tests: the work-stealing executor is observationally
//! identical to sequential iteration — same values, same order, same
//! float bits — under adversarially skewed per-item costs, including
//! nested parallel calls from inside worker tasks.

use proptest::prelude::*;
use rayon::prelude::*;

/// Forces a real multi-worker pool even on single-core CI hosts, so the
/// properties actually exercise stealing and splitting.
fn setup() {
    rayon::set_worker_threads(4);
}

/// Burns CPU proportionally to `units`, returning a value that depends
/// on the work done (so the loop cannot be optimized away).
fn spin(units: u64) -> u64 {
    let mut acc = units;
    for i in 0..units {
        acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
    }
    acc
}

/// Per-item cost skew: a few items are ~1000x more expensive, which is
/// exactly the shape that serialized the old static-chunking shim.
fn cost_of(x: u64, skew: u64) -> u64 {
    if x % 97 == 0 {
        1000 * (skew + 1)
    } else {
        x % (skew + 2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `map().collect()` returns exactly the sequential results in
    /// input order, no matter how the per-item costs are skewed.
    #[test]
    fn collect_matches_sequential_under_skew(
        items in proptest::collection::vec(any::<u64>(), 0..700),
        skew in 0u64..60,
    ) {
        setup();
        let f = |x: &u64| x.wrapping_add(spin(cost_of(*x, skew)));
        let par: Vec<u64> = items.par_iter().map(f).collect();
        let seq: Vec<u64> = items.iter().map(f).collect();
        prop_assert_eq!(par, seq);
    }

    /// Two-argument `reduce` folds in input order: with a
    /// non-associative float op the result is bit-identical to the
    /// sequential fold.
    #[test]
    fn float_reduce_bit_identical(
        items in proptest::collection::vec(0.0f64..1.0, 1..500),
        skew in 0u64..40,
    ) {
        setup();
        let f = |x: &f64| {
            let burn = spin(cost_of(x.to_bits() >> 40, skew));
            // `burn` folds in as an exactly-representable tiny term so
            // the spin cannot be elided but bits stay deterministic.
            x / 3.0 + ((burn & 1) as f64) * 0.0
        };
        let par = items.par_iter().map(f).reduce(|| 0.25, |a, b| a * 0.5 + b);
        let seq = items.iter().map(f).fold(0.25, |a, b| a * 0.5 + b);
        prop_assert_eq!(par.to_bits(), seq.to_bits());
    }

    /// `filter_map().collect()` keeps only the `Some`s, in order.
    #[test]
    fn filter_map_matches_sequential(
        items in proptest::collection::vec(any::<u64>(), 0..600),
        modulus in 2u64..9,
    ) {
        setup();
        let f = |x: &u64| (x % modulus == 0).then(|| x.wrapping_mul(3));
        let par: Vec<u64> = items.par_iter().filter_map(f).collect();
        let seq: Vec<u64> = items.iter().filter_map(f).collect();
        prop_assert_eq!(par, seq);
    }

    /// Nested parallelism: an outer `par_iter` whose items each run an
    /// inner `par_iter` (with skewed costs) still reproduces the
    /// sequential nested result exactly.
    #[test]
    fn nested_calls_match_sequential(
        outer in proptest::collection::vec(any::<u64>(), 1..40),
        inner_len in 1usize..40,
        skew in 0u64..30,
    ) {
        setup();
        let inner_of = |x: u64| -> Vec<u64> {
            (0..inner_len as u64).map(|i| x.wrapping_add(i)).collect()
        };
        let g = |y: &u64| y.wrapping_add(spin(cost_of(*y, skew)));
        let par: Vec<u64> = outer
            .par_iter()
            .map(|x| {
                let inner = inner_of(*x);
                let folded: u64 = inner
                    .par_iter()
                    .map(g)
                    .reduce(|| 0, |a, b| a.wrapping_mul(31).wrapping_add(b));
                folded
            })
            .collect();
        let seq: Vec<u64> = outer
            .iter()
            .map(|x| {
                inner_of(*x)
                    .iter()
                    .map(g)
                    .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
            })
            .collect();
        prop_assert_eq!(par, seq);
    }

    /// `par_chunks` agrees with sequential `chunks` for any chunk size.
    #[test]
    fn par_chunks_match_sequential(
        items in proptest::collection::vec(any::<u64>(), 0..800),
        chunk in 1usize..130,
    ) {
        setup();
        let f = |c: &[u64]| c.iter().fold(7u64, |a, b| a.wrapping_mul(13).wrapping_add(*b));
        let par: Vec<u64> = items.par_chunks(chunk).map(f).collect();
        let seq: Vec<u64> = items.chunks(chunk).map(f).collect();
        prop_assert_eq!(par, seq);
    }

    /// `join` computes both closures regardless of which side is
    /// stolen, and nests arbitrarily.
    #[test]
    fn join_matches_direct_calls(
        a in any::<u64>(),
        b in any::<u64>(),
        depth in 0usize..6,
    ) {
        setup();
        fn tree(x: u64, depth: usize) -> u64 {
            if depth == 0 {
                return spin(x % 50);
            }
            let (l, r) = rayon::join(
                || tree(x.wrapping_mul(3), depth - 1),
                || tree(x.wrapping_add(7), depth - 1),
            );
            l.wrapping_mul(31).wrapping_add(r)
        }
        fn tree_seq(x: u64, depth: usize) -> u64 {
            if depth == 0 {
                return spin(x % 50);
            }
            let l = tree_seq(x.wrapping_mul(3), depth - 1);
            let r = tree_seq(x.wrapping_add(7), depth - 1);
            l.wrapping_mul(31).wrapping_add(r)
        }
        let (ra, rb) = rayon::join(|| tree(a, depth), || tree(b, depth));
        prop_assert_eq!(ra, tree_seq(a, depth));
        prop_assert_eq!(rb, tree_seq(b, depth));
    }
}
