//! Offline drop-in subset of the [proptest](https://docs.rs/proptest)
//! property-testing API.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the exact surface its test suites use: the `proptest!` macro
//! with `#![proptest_config(ProptestConfig::with_cases(N))]`, range and
//! tuple strategies, `any::<u64>()`, `Just`, `prop_oneof!`, `prop_map`,
//! `proptest::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! assertion macros.
//!
//! Differences from upstream, by design:
//!
//! * cases are generated from a fixed per-test seed (FNV-1a of the test
//!   path), so runs are fully deterministic and need no
//!   `proptest-regressions` persistence;
//! * there is no shrinking — the failing inputs are printed as-is;
//! * `.proptest-regressions` files are *not* replayed (their minimized
//!   cases should be pinned as explicit `#[test]`s instead).

#![forbid(unsafe_code)]

/// Test-case driver: configuration, RNG, and failure type.
pub mod test_runner {
    /// Run configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 generator seeded from the test path.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's fully qualified name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then ensure a nonzero state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    #[derive(Clone, Debug)]
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy and length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` of `len ∈ range` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = ::std::format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\nminimal reproduction inputs (no shrinking):\n{}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among listed strategies (all arms one type here).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Asserts a condition inside `proptest!`, reporting generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside `proptest!`, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&u));
            let i = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&i));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u64..10, 1..9), &mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_maps(
            pair in (1usize..5, 0u64..100).prop_map(|(a, b)| (a * 2, b)),
            flag in prop_oneof![Just(true), Just(false)],
        ) {
            prop_assert!(pair.0 % 2 == 0, "mapped value {} must be even", pair.0);
            prop_assert!(pair.1 < 100);
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        mod failing {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                // Deliberately no #[test] attribute: invoked manually so
                // the harness does not count this as a failing test.
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            pub fn run() {
                always_fails();
            }
        }
        let err = std::panic::catch_unwind(failing::run).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("x ="), "missing inputs in: {msg}");
    }
}
