//! Offline drop-in subset of the [parking_lot](https://docs.rs/parking_lot)
//! API, backed by `std::sync`.
//!
//! The workspace uses `Mutex::lock()` (no poison `Result`) and
//! `Condvar::wait(&mut MutexGuard)`. Both are reproduced here over the
//! standard-library primitives: poisoning is swallowed (a panicking
//! holder does not poison the lock, matching parking_lot), and the guard
//! wraps the std guard in an `Option` so `Condvar::wait` can take it,
//! block on the std condvar, and put the reacquired guard back — no
//! `unsafe` required.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Some` except transiently inside `Condvar::wait`.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present outside wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(reacquired);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(0u64);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(1u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let woke = Arc::new(AtomicBool::new(false));
        let woke2 = Arc::clone(&woke);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
            woke2.store(true, Ordering::SeqCst);
        });
        {
            let (lock, cv) = &*pair;
            let mut done = lock.lock();
            *done = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }
}
