//! Offline drop-in subset of the [crossbeam](https://docs.rs/crossbeam)
//! API: an unbounded MPMC channel.
//!
//! The workspace needs what `std::sync::mpsc` cannot give — a
//! `Receiver` that is `Clone` so several workers can drain one queue —
//! so the shim is a `Mutex<VecDeque>` + `Condvar` with sender/receiver
//! reference counts. `recv` blocks until an item arrives or every
//! `Sender` is dropped; `send` fails only once every `Receiver` is gone.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                let _g = self.inner.queue.lock();
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty
        /// and at least one sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Attempts to dequeue without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Blocking iterator: yields until the channel is empty *and*
        /// every sender has been dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::HashSet;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn cloned_receivers_partition_items() {
            let (tx, rx) = unbounded();
            let rxs: Vec<Receiver<u64>> = (0..4).map(|_| rx.clone()).collect();
            drop(rx);
            let handles: Vec<_> = rxs
                .into_iter()
                .map(|rx| std::thread::spawn(move || rx.iter().collect::<Vec<u64>>()))
                .collect();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all = HashSet::new();
            for h in handles {
                for v in h.join().unwrap() {
                    assert!(all.insert(v), "item {v} delivered twice");
                }
            }
            assert_eq!(all.len(), 1000);
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7u8).is_err());
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }
}
