//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the small surface its `[[bench]]` targets use. The shim
//! keeps the statistics honest-but-simple: each benchmark runs one
//! warm-up iteration plus `sample_size` timed iterations and reports
//! the mean wall-clock time (and throughput when declared). That is
//! enough for `cargo bench` to produce comparable numbers offline and
//! for `cargo test` to type-check the bench targets.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput declaration for per-iteration rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Finishes the group (reports were already printed per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{}: no iterations run", self.name, id);
            return;
        }
        let mean = b.total.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3e} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3e} B/s", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: mean {:.3e} s over {} iters{}",
            self.name, id, mean, b.iters, rate
        );
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once to warm up, then `sample_size` timed times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group-runner function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut g = c.benchmark_group("square");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("x2", |b| b.iter(|| black_box(21u64) * 2));
        for k in [2u64, 3] {
            g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
                b.iter(|| black_box(k) * k)
            });
        }
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = bench_square
    }

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("count");
        let mut calls = 0u64;
        g.bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        // one warm-up + four timed samples
        assert_eq!(calls, 5);
        g.finish();
    }
}
